package portfolio

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/device"
	"vaq/internal/parallel"
	"vaq/internal/route"
	"vaq/internal/workloads"
)

// testFixture builds the shared portfolio setup: a generated IBM-Q20
// archive with its mean device as the scoring reference.
func testFixture(t testing.TB) (*device.Device, *calib.Archive) {
	t.Helper()
	arch := calib.Generate(calib.DefaultQ20Config(11))
	d, err := device.New(arch.Topo, arch.MustMean())
	if err != nil {
		t.Fatal(err)
	}
	return d, arch
}

func testSpec(workers int) Spec {
	return Spec{
		RootSeed:     7,
		Cycles:       1,
		RandomStarts: 1,
		TopK:         3,
		Trials:       2000,
		Workers:      workers,
	}
}

func TestGridDeterministicAndSized(t *testing.T) {
	_, arch := testFixture(t)
	spec := testSpec(0)
	g1 := Grid(spec, arch)
	g2 := Grid(spec, arch)
	if len(g1) == 0 {
		t.Fatal("empty grid")
	}
	if want := GridSize(spec, len(arch.Snapshots)); len(g1) != want {
		t.Fatalf("GridSize %d != len(Grid) %d", want, len(g1))
	}
	if fmt.Sprint(g1) != fmt.Sprint(g2) {
		t.Fatal("grid enumeration is not deterministic")
	}
	// (2 greedy/vqa + 1 random) × 4 movers × 2 optimize × (mean + 1 cycle)
	if want := 3 * 4 * 2 * 2; len(g1) != want {
		t.Fatalf("grid has %d candidates, want %d", len(g1), want)
	}
	// The sabre movement axis is on the grid; sabre-hops deliberately is
	// not (it duplicates baseline's objective) but stays name-resolvable.
	movers := map[string]bool{}
	for _, c := range g1 {
		movers[c.Mover] = true
	}
	if !movers[MoverSabre] {
		t.Errorf("grid movers %v missing %q", movers, MoverSabre)
	}
	if movers[route.MovementSabreHops] {
		t.Errorf("sabre-hops should stay off the default grid")
	}
	seen := map[int64]bool{}
	for i, c := range g1 {
		if c.ID != i {
			t.Fatalf("candidate %d has ID %d", i, c.ID)
		}
		if seen[c.Seed] {
			t.Fatalf("duplicate derived seed %d at candidate %d", c.Seed, i)
		}
		seen[c.Seed] = true
	}
	// The most recent cycle, not an arbitrary one, is in the window.
	last := arch.Snapshots[len(arch.Snapshots)-1].Cycle
	found := false
	for _, c := range g1 {
		if c.Cycle == last {
			found = true
		}
	}
	if !found {
		t.Fatalf("grid does not cover the most recent cycle %d", last)
	}
}

func TestGridNilArchive(t *testing.T) {
	g := Grid(testSpec(0), nil)
	for _, c := range g {
		if c.Cycle != MeanCycle {
			t.Fatalf("nil-archive grid has cycle %d", c.Cycle)
		}
	}
	if want := 3 * 4 * 2; len(g) != want {
		t.Fatalf("nil-archive grid has %d candidates, want %d", len(g), want)
	}
}

// TestRunDeterministicAcrossWorkers pins the acceptance criterion: the
// same root seed, device, and circuit produce a byte-identical ranked
// portfolio at 1, 2, and GOMAXPROCS workers.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	d, arch := testFixture(t)
	prog := workloads.BV(8)
	var want []byte
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		res, err := Run(context.Background(), d, arch, prog, testSpec(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res.ClearTimings()
		got, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Errorf("workers=%d: ranked portfolio differs from workers=1", workers)
		}
	}
}

func TestRunRankingInvariants(t *testing.T) {
	d, arch := testFixture(t)
	prog := workloads.BV(8)
	spec := testSpec(0)
	res, err := Run(context.Background(), d, arch, prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("unexpected failures: %+v", res.Failures)
	}
	if got, want := len(res.Candidates), GridSize(spec, len(arch.Snapshots)); got != want {
		t.Fatalf("ranked %d candidates, want %d", got, want)
	}
	for i, c := range res.Candidates {
		if c.Rank != i+1 {
			t.Fatalf("candidate %d has rank %d", i, c.Rank)
		}
		if refined := c.MCResult != nil; refined != (i < spec.TopK) {
			t.Fatalf("candidate rank %d refined=%v, want top-%d refined", c.Rank, refined, spec.TopK)
		}
		if c.Compiled == nil {
			t.Fatalf("candidate rank %d lost its compilation", c.Rank)
		}
		if c.AnalyticPST <= 0 || c.AnalyticPST > 1 {
			t.Fatalf("candidate rank %d analytic PST %v out of range", c.Rank, c.AnalyticPST)
		}
	}
	// The analytic tail stays analytic-sorted.
	for i := spec.TopK; i+1 < len(res.Candidates); i++ {
		a, b := res.Candidates[i], res.Candidates[i+1]
		if a.AnalyticPST < b.AnalyticPST {
			t.Fatalf("tail not analytic-sorted at rank %d: %v < %v", a.Rank, a.AnalyticPST, b.AnalyticPST)
		}
	}
	if best := res.Best(); best == nil || best.Rank != 1 {
		t.Fatalf("Best() = %+v", best)
	}
	// The portfolio's winner is at least as reliable (analytically) as
	// the plain greedy/baseline candidate on the mean device — the
	// candidate every fixed policy can also produce.
	for _, c := range res.Candidates {
		if c.Alloc == AllocGreedy && c.Mover == MoverBaseline && !c.Optimize && c.Cycle == MeanCycle {
			if res.Candidates[0].AnalyticPST < c.AnalyticPST {
				t.Fatalf("winner analytic %v below baseline candidate %v",
					res.Candidates[0].AnalyticPST, c.AnalyticPST)
			}
		}
	}
}

// TestInjectedPanicQuarantined pins the fault-isolation acceptance
// criterion: a panicking candidate lands in the failure list while
// every sibling still ranks.
func TestInjectedPanicQuarantined(t *testing.T) {
	d, arch := testFixture(t)
	prog := workloads.BV(8)
	spec := testSpec(2)
	grid := Grid(spec, arch)
	victim := grid[len(grid)/2]
	compileHook = func(c CandidateSpec) {
		if c.ID == victim.ID {
			panic("injected portfolio test panic")
		}
	}
	defer func() { compileHook = nil }()

	res, err := Run(context.Background(), d, arch, prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != len(grid)-1 {
		t.Fatalf("ranked %d candidates, want %d", len(res.Candidates), len(grid)-1)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("got %d failures, want 1: %+v", len(res.Failures), res.Failures)
	}
	f := res.Failures[0]
	if f.ID != victim.ID {
		t.Fatalf("failure at candidate %d, want %d", f.ID, victim.ID)
	}
	if !strings.Contains(f.Reason, "injected portfolio test panic") {
		t.Fatalf("failure reason %q does not carry the panic", f.Reason)
	}
	var pe *parallel.PanicError
	if !errors.As(f.Err, &pe) {
		t.Fatalf("failure error %T does not unwrap to PanicError", f.Err)
	}
	for _, c := range res.Candidates {
		if c.ID == victim.ID {
			t.Fatal("panicked candidate still ranked")
		}
	}
}

func TestRunAllCandidatesFailed(t *testing.T) {
	d, arch := testFixture(t)
	prog := workloads.BV(8)
	compileHook = func(CandidateSpec) { panic("total failure") }
	defer func() { compileHook = nil }()
	res, err := Run(context.Background(), d, arch, prog, testSpec(0))
	if err == nil {
		t.Fatal("expected error when every candidate fails")
	}
	if res == nil || len(res.Failures) == 0 {
		t.Fatal("failure list missing from all-failed result")
	}
}

func TestRunCancelled(t *testing.T) {
	d, arch := testFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, d, arch, workloads.BV(8), testSpec(0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunProgramTooLarge: a program that cannot fit the device fails
// every candidate with a typed error rather than panicking.
func TestRunProgramTooLarge(t *testing.T) {
	d, arch := testFixture(t)
	_, err := Run(context.Background(), d, arch, workloads.BV(64), testSpec(0))
	if err == nil {
		t.Fatal("expected error for oversized program")
	}
}

func TestDeriveSeedStreamsDecorrelated(t *testing.T) {
	if deriveSeed(7, compileStream, 0) == deriveSeed(7, mcStream, 0) {
		t.Fatal("compile and MC streams collide")
	}
	if deriveSeed(7, compileStream, 1) == deriveSeed(8, compileStream, 1) {
		t.Fatal("root seed does not alter derived seeds")
	}
}

func TestSpecDefaults(t *testing.T) {
	s := Spec{}.withDefaults()
	if s.RootSeed != DefaultRootSeed || s.Cycles != DefaultCycles ||
		s.RandomStarts != DefaultRandomStarts || s.TopK != DefaultTopK || s.Trials != DefaultTrials {
		t.Fatalf("unexpected defaults: %+v", s)
	}
	// Negative axes mean "none", not "default".
	s = Spec{Cycles: -1, RandomStarts: -1}.withDefaults()
	if s.Cycles != 0 || s.RandomStarts != 0 {
		t.Fatalf("negative axes not normalized to zero: %+v", s)
	}
	// withDefaults is idempotent: a normalized "none" (0) must not be
	// reinterpreted as "use the default" on a second pass — Run
	// normalizes once and Grid normalizes again.
	if s2 := s.withDefaults(); s2.Cycles != 0 || s2.RandomStarts != 0 {
		t.Fatalf("withDefaults not idempotent: %+v", s2)
	}
}

func TestCandidateLabel(t *testing.T) {
	cases := []struct {
		c    CandidateSpec
		want string
	}{
		{CandidateSpec{Alloc: AllocGreedy, Mover: MoverBaseline, Cycle: MeanCycle}, "greedy/baseline@mean"},
		{CandidateSpec{Alloc: AllocRandom, Start: 1, Mover: MoverVQM, Optimize: true, Cycle: 103}, "random#1/vqm+O@c103"},
	}
	for _, tc := range cases {
		if got := tc.c.Label(); got != tc.want {
			t.Errorf("Label() = %q, want %q", got, tc.want)
		}
	}
}
