// Parametric portfolio ranking: run the candidate grid once on a
// symbolic template, reuse the winner across an entire parameter sweep.
//
// Because the error model is angle-independent (see core's parametric
// plane), a candidate's analytic and Monte-Carlo rank is a property of
// its mapping alone — the ranking computed on the sentinel-bound
// template is exact for every binding. A sweep therefore pays for
// portfolio ranking once and rebinds the winning mapping per parameter
// set.
package portfolio

import (
	"context"
	"fmt"

	"vaq/internal/calib"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/param"
)

// RunParametric ranks the candidate grid on the sentinel-bound template
// and returns the ranked result together with a rebindable handle for
// the winning candidate. The transpile.Optimize grid points are
// excluded (spec.NoOptimize is forced): the optimizer's angle
// arithmetic would corrupt the placeholder slots.
func RunParametric(ctx context.Context, d *device.Device, arch *calib.Archive, pc *param.ParametricCircuit, spec Spec) (*Result, *core.Bound, error) {
	spec = spec.withDefaults()
	spec.NoOptimize = true
	sent, exprs, err := pc.SentinelBind()
	if err != nil {
		return nil, nil, err
	}
	res, err := Run(ctx, d, arch, sent, spec)
	if err != nil {
		return nil, nil, err
	}
	best := res.Best()
	if best == nil || best.Compiled == nil {
		return nil, nil, fmt.Errorf("portfolio: parametric run produced no rebindable winner")
	}
	bound, err := core.NewBound(d, exprs, best.Compiled)
	if err != nil {
		return nil, nil, err
	}
	return res, bound, nil
}
