package portfolio

import (
	"context"
	"testing"

	"vaq/internal/ansatz"
	"vaq/internal/sim"
)

func TestRunParametricRanksOnce(t *testing.T) {
	d, arch := testFixture(t)
	pc, err := ansatz.EfficientSU2(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, bound, err := RunParametric(context.Background(), d, arch, pc, testSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	// The optimizer grid points are excluded: sentinel slots survive in
	// every candidate, so the grid size halves.
	for _, c := range res.Candidates {
		if c.Optimize {
			t.Fatalf("optimize candidate %s in a parametric run", c.Label())
		}
	}
	if want := GridSize(Spec{Cycles: 1, RandomStarts: 1, NoOptimize: true}, len(arch.Snapshots)); len(res.Candidates)+len(res.Failures) != want {
		t.Fatalf("grid size %d+%d, want %d", len(res.Candidates), len(res.Failures), want)
	}

	if bound.NumParams() != pc.NumParams() {
		t.Fatalf("bound params %d, want %d", bound.NumParams(), pc.NumParams())
	}
	// Rebinding the winner yields the winning mapping's PST for any
	// binding — the ranking is sweep-invariant.
	vals := make([]float64, bound.NumParams())
	for i := range vals {
		vals[i] = 0.2 * float64(i)
	}
	phys, err := bound.RebindValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sim.AnalyticPST(d, phys, sim.Config{}), res.Best().AnalyticPST; got != want {
		t.Fatalf("rebound PST %v != winner's ranked PST %v", got, want)
	}
}

func TestRunParametricDeterministicAcrossWorkers(t *testing.T) {
	d, arch := testFixture(t)
	pc, err := ansatz.QAOA(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := RunParametric(context.Background(), d, arch, pc, testSpec(-1))
	if err != nil {
		t.Fatal(err)
	}
	base.ClearTimings()
	for _, workers := range []int{1, 4} {
		res, _, err := RunParametric(context.Background(), d, arch, pc, testSpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		res.ClearTimings()
		if len(res.Candidates) != len(base.Candidates) {
			t.Fatalf("workers=%d: candidate count differs", workers)
		}
		for i := range base.Candidates {
			a, b := base.Candidates[i], res.Candidates[i]
			if a.CandidateSpec != b.CandidateSpec || a.AnalyticPST != b.AnalyticPST ||
				(a.MCResult == nil) != (b.MCResult == nil) ||
				(a.MCResult != nil && *a.MCResult != *b.MCResult) {
				t.Fatalf("workers=%d: candidate %d differs:\n%+v\n%+v", workers, i, a, b)
			}
		}
	}
}
