// Package portfolio implements speculative portfolio compilation: the
// production-shaped answer to the paper's central observation that qubit
// quality varies across space and time, so no single fixed compilation
// policy is best for every circuit on every calibration cycle.
//
// A portfolio run enumerates a deterministic grid of compilation
// candidates — allocation policy × movement policy × optimizer on/off ×
// a window of recent calibration cycles — compiles every candidate in
// parallel through the existing pipeline (reusing the memoized routing
// cost tables), ranks the results by the cheap analytic expected success
// probability (ESP), refines the leaders with the block-sharded
// Monte-Carlo simulator, and returns the ranked portfolio. Candidates
// are compiled against their own cycle's device model (diverse cost
// landscapes produce diverse mappings) but all are scored on the single
// reference device the caller supplies, so ranks are comparable.
//
// Every per-candidate seed derives SplitMix64-style from one root seed
// and the candidate's grid position, and every tie in the ranking breaks
// on the candidate ID, so the same root seed yields a byte-identical
// ranking at any worker count. A failing or panicking candidate is
// quarantined into the result's failure list — it never aborts its
// siblings.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"vaq/internal/alloc"
	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/parallel"
	"vaq/internal/route"
	"vaq/internal/sim"
	"vaq/internal/transpile"
)

// Allocation and movement axis labels. The movement names follow the
// paper's policy vocabulary via the route package registry: "baseline"
// is the SWAP-minimizing hop-cost A*, "vqm" the reliability-cost A*,
// "vqm-hop" its MAH=4 variant, "sabre" the scalable SABRE-style
// reliability router.
const (
	AllocGreedy = "greedy"
	AllocVQA    = "vqa"
	AllocRandom = "random"

	MoverBaseline = route.MovementBaseline
	MoverVQM      = route.MovementVQM
	MoverVQMHop   = route.MovementVQMHop
	MoverSabre    = route.MovementSabre
)

// gridMovers is the movement axis of the candidate grid. sabre-hops is
// resolvable by name but intentionally off the grid: on the small
// devices the portfolio targets it duplicates baseline's objective at
// worse quality, so it would only dilute the ESP ranking.
func gridMovers() []string {
	return []string{MoverBaseline, MoverVQM, MoverVQMHop, MoverSabre}
}

// MeanCycle is the Cycle value of candidates compiled against the
// reference device (the archive-mean snapshot) rather than one specific
// calibration cycle.
const MeanCycle = -1

// Spec parameterizes a portfolio run. The zero value (normalized by
// withDefaults) compiles the full allocation × movement × optimize grid
// on the reference device plus the DefaultCycles most recent cycles.
type Spec struct {
	// RootSeed is the single seed every per-candidate seed derives from
	// (default 2019).
	RootSeed int64
	// Cycles is the calibration window: the K most recent cycles of the
	// archive each get their own grid slice, in addition to the
	// reference (mean) device. 0 means DefaultCycles; negative means
	// reference only. Clamped to the archive length.
	Cycles int
	// RandomStarts is the number of seeded-random multi-start
	// allocation candidates per (mover, optimize, cycle) point
	// (default DefaultRandomStarts; negative means none).
	RandomStarts int
	// TopK bounds the Monte-Carlo refinement stage (default DefaultTopK).
	TopK int
	// Trials is the Monte-Carlo budget per refined candidate (default
	// DefaultTrials).
	Trials int
	// Workers bounds the candidate fan-out goroutines (0: one per CPU,
	// <0: serial). The ranking is bit-identical at any setting.
	Workers int
	// Kernel selects the Monte-Carlo kernel for the refinement stage
	// ("" means the simulator default, the packed kernel; see
	// sim.Config.Kernel).
	Kernel string
	// NoOptimize drops the transpile.Optimize candidates from the grid.
	// Parametric (sentinel-carrying) templates require it: the optimizer
	// does angle arithmetic — rotation merging, zero-angle elimination —
	// that would corrupt placeholder slots (see RunParametric).
	NoOptimize bool

	// normalized marks a spec that already passed through withDefaults.
	// The zero-vs-negative sentinels are only meaningful on raw input:
	// a second pass must not reinterpret a normalized "none" (0) as
	// "use the default".
	normalized bool
}

// Spec defaults.
const (
	DefaultRootSeed     = 2019
	DefaultCycles       = 2
	DefaultRandomStarts = 2
	DefaultTopK         = 8
	DefaultTrials       = 20000
)

func (s Spec) withDefaults() Spec {
	if s.normalized {
		return s
	}
	s.normalized = true
	if s.RootSeed == 0 {
		s.RootSeed = DefaultRootSeed
	}
	if s.Cycles == 0 {
		s.Cycles = DefaultCycles
	}
	if s.Cycles < 0 {
		s.Cycles = 0
	}
	if s.RandomStarts == 0 {
		s.RandomStarts = DefaultRandomStarts
	}
	if s.RandomStarts < 0 {
		s.RandomStarts = 0
	}
	if s.TopK <= 0 {
		s.TopK = DefaultTopK
	}
	if s.Trials <= 0 {
		s.Trials = DefaultTrials
	}
	return s
}

// CandidateSpec pins one grid point before compilation: the policy
// tuple, the calibration cycle it compiles against, and the derived
// seed. ID is the candidate's position in grid-enumeration order — the
// deterministic tie-breaker of the final ranking.
type CandidateSpec struct {
	ID       int    `json:"id"`
	Alloc    string `json:"alloc"`
	Start    int    `json:"start,omitempty"` // random multi-start index (0 otherwise)
	Mover    string `json:"mover"`
	Optimize bool   `json:"optimize"`
	Cycle    int    `json:"cycle"` // archive snapshot index; MeanCycle for the reference device
	Seed     int64  `json:"seed"`
}

// Label renders the policy tuple compactly for tables and errors, e.g.
// "vqa/vqm-hop+O@c103" or "random#1/baseline@mean".
func (c CandidateSpec) Label() string {
	a := c.Alloc
	if c.Alloc == AllocRandom {
		a = fmt.Sprintf("%s#%d", c.Alloc, c.Start)
	}
	opt := ""
	if c.Optimize {
		opt = "+O"
	}
	cyc := "mean"
	if c.Cycle != MeanCycle {
		cyc = fmt.Sprintf("c%d", c.Cycle)
	}
	return fmt.Sprintf("%s/%s%s@%s", a, c.Mover, opt, cyc)
}

// Grid enumerates the deterministic candidate grid for spec over the
// archive's calibration window: cycle (reference first, then the K most
// recent cycles oldest-first) × allocation (greedy, vqa, then the
// random starts) × movement (baseline, vqm, vqm-hop) × optimize (off,
// on). arch may be nil, which restricts the grid to the reference
// device. Candidate seeds derive SplitMix64-style from spec.RootSeed
// and the candidate ID.
func Grid(spec Spec, arch *calib.Archive) []CandidateSpec {
	spec = spec.withDefaults()
	cycles := []int{MeanCycle}
	if arch != nil {
		k := spec.Cycles
		if k > len(arch.Snapshots) {
			k = len(arch.Snapshots)
		}
		for i := len(arch.Snapshots) - k; i < len(arch.Snapshots); i++ {
			cycles = append(cycles, i)
		}
	}
	type allocPoint struct {
		name  string
		start int
	}
	allocs := []allocPoint{{AllocGreedy, 0}, {AllocVQA, 0}}
	for s := 0; s < spec.RandomStarts; s++ {
		allocs = append(allocs, allocPoint{AllocRandom, s})
	}
	movers := gridMovers()
	optPoints := []bool{false, true}
	if spec.NoOptimize {
		optPoints = []bool{false}
	}

	var grid []CandidateSpec
	for _, cyc := range cycles {
		for _, al := range allocs {
			for _, mv := range movers {
				for _, opt := range optPoints {
					id := len(grid)
					grid = append(grid, CandidateSpec{
						ID:       id,
						Alloc:    al.name,
						Start:    al.start,
						Mover:    mv,
						Optimize: opt,
						Cycle:    cyc,
						Seed:     deriveSeed(spec.RootSeed, compileStream, id),
					})
				}
			}
		}
	}
	return grid
}

// GridSize reports the number of candidates Run would compile, without
// enumerating them — the bound request validators check.
func GridSize(spec Spec, availableCycles int) int {
	spec = spec.withDefaults()
	k := spec.Cycles
	if k > availableCycles {
		k = availableCycles
	}
	opts := 2
	if spec.NoOptimize {
		opts = 1
	}
	return (1 + k) * (2 + spec.RandomStarts) * len(gridMovers()) * opts
}

// Seed-stream salts keeping compilation and Monte-Carlo refinement on
// decorrelated SplitMix64 streams of the same root seed.
const (
	compileStream uint64 = 0x706F7274666F6C69 // "portfoli"
	mcStream      uint64 = 0x6573702D72616E6B // "esp-rank"
)

// deriveSeed mixes (root, stream, i) through the SplitMix64 finalizer —
// the same derivation discipline as the simulator's per-block streams,
// a pure function of its inputs so the grid is reproducible anywhere.
func deriveSeed(root int64, stream uint64, i int) int64 {
	z := uint64(root) ^ stream
	z += (uint64(i) + 1) * 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// MC is a candidate's Monte-Carlo refinement: PST with its binomial
// standard error at the refinement trial budget.
type MC struct {
	PST    float64 `json:"pst"`
	StdErr float64 `json:"std_err"`
	Trials int     `json:"trials"`
}

// Candidate is one ranked portfolio entry: the grid point it came from
// plus per-candidate diagnostics.
type Candidate struct {
	Rank int `json:"rank"` // 1-based position in the ranking
	CandidateSpec
	Swaps        int     `json:"swaps"`
	Instructions int     `json:"instructions"` // physical instruction count
	Depth        int     `json:"depth"`
	AnalyticPST  float64 `json:"analytic_pst"`
	// MCResult is set only for candidates that reached the Monte-Carlo
	// refinement stage (the analytic top-k).
	MCResult *MC `json:"monte_carlo,omitempty"`
	// CompileNs is the candidate's wall-clock compile latency. It is
	// diagnostic only: never part of the ranking, and zeroed by
	// ClearTimings for byte-identical comparisons.
	CompileNs int64 `json:"compile_ns"`

	// Compiled is the full compilation, for callers that need the
	// physical circuit (the winner is typically re-estimated or
	// executed). Not serialized.
	Compiled *core.Compiled `json:"-"`
}

// Failure is one quarantined candidate: the grid point and why it
// failed. The underlying error is preserved for errors.Is/As; Reason is
// its rendered form for serialization.
type Failure struct {
	CandidateSpec
	Reason string `json:"reason"`
	Err    error  `json:"-"`
}

// Result is a ranked portfolio. Candidates are ordered best-first:
// Monte-Carlo-refined candidates (by MC PST, then analytic PST, then
// ID) ahead of analytic-only ones (by analytic PST, then ID).
type Result struct {
	RootSeed   int64       `json:"root_seed"`
	Device     string      `json:"device"`
	DeviceFP   string      `json:"device_fingerprint"`
	Program    string      `json:"program"`
	Candidates []Candidate `json:"candidates"`
	Failures   []Failure   `json:"failures,omitempty"`
	// TotalNs is the wall-clock duration of the whole portfolio run
	// (diagnostic only; see Candidate.CompileNs).
	TotalNs int64 `json:"total_ns"`
}

// Best returns the top-ranked candidate, or nil when every candidate
// failed.
func (r *Result) Best() *Candidate {
	if len(r.Candidates) == 0 {
		return nil
	}
	return &r.Candidates[0]
}

// ClearTimings zeroes every wall-clock diagnostic, leaving exactly the
// deterministic portfolio: equality tests and golden files compare
// results after calling it.
func (r *Result) ClearTimings() {
	r.TotalNs = 0
	for i := range r.Candidates {
		r.Candidates[i].CompileNs = 0
	}
}

// compileHook, when set, observes every candidate before it compiles.
// Tests use it to inject failures into specific grid points.
var compileHook func(CandidateSpec)

// allocator materializes a candidate's allocation policy. Stateful
// policies (random) are constructed fresh per candidate, which is what
// makes the concurrent fan-out race-free (see alloc.Policy).
func allocator(c CandidateSpec) (alloc.Policy, error) {
	switch c.Alloc {
	case AllocGreedy:
		return alloc.Greedy{}, nil
	case AllocVQA:
		return alloc.VQA{}, nil
	case AllocRandom:
		return alloc.NewRandom(c.Seed), nil
	default:
		return nil, fmt.Errorf("portfolio: unknown allocation policy %q", c.Alloc)
	}
}

// mover materializes a candidate's movement policy via the route
// registry, so the grid axis and the CLI/service `movement` knob accept
// exactly the same names.
func mover(c CandidateSpec) (route.Router, error) {
	r, err := route.ByName(c.Mover, 0)
	if err != nil {
		return nil, fmt.Errorf("portfolio: %w", err)
	}
	return r, nil
}

// cycleDevices builds the per-cycle device models the grid references:
// MeanCycle maps to the reference device, every other cycle to a device
// over that archive snapshot. A cycle whose snapshot cannot back a
// device carries its error, failing that cycle's candidates
// individually rather than the portfolio.
func cycleDevices(ref *device.Device, arch *calib.Archive, grid []CandidateSpec) map[int]cycleDevice {
	out := map[int]cycleDevice{MeanCycle: {dev: ref}}
	for _, c := range grid {
		if _, ok := out[c.Cycle]; ok {
			continue
		}
		if arch == nil || c.Cycle < 0 || c.Cycle >= len(arch.Snapshots) {
			out[c.Cycle] = cycleDevice{err: fmt.Errorf("portfolio: cycle %d not in archive", c.Cycle)}
			continue
		}
		d, err := device.New(arch.Topo, arch.Snapshots[c.Cycle])
		out[c.Cycle] = cycleDevice{dev: d, err: err}
	}
	return out
}

type cycleDevice struct {
	dev *device.Device
	err error
}

// Run compiles the candidate grid for prog, scores every candidate on
// the reference device d, and returns the ranked portfolio. arch may be
// nil (reference-only grid). Per-candidate failures are quarantined
// into Result.Failures; Run itself fails only when the context is
// cancelled before the portfolio completes, or when every single
// candidate failed (a portfolio with no survivors has no winner to
// serve).
func Run(ctx context.Context, d *device.Device, arch *calib.Archive, prog *circuit.Circuit, spec Spec) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec = spec.withDefaults()
	start := time.Now()
	grid := Grid(spec, arch)
	devs := cycleDevices(d, arch, grid)

	// The logical program is optimized at most once, shared by every
	// Optimize candidate (transpile.Optimize is deterministic).
	optimized, _ := transpile.Optimize(prog)

	// Stage 1: compile + analytic ESP for every candidate. Failures are
	// collected, never fatal. Inner Monte-Carlo parallelism is off (the
	// grid is the parallel axis), which the pool guarantees is
	// outcome-neutral.
	cands := make([]*Candidate, len(grid))
	preps := make([]*sim.Prepared, len(grid))
	err := parallel.Collect(ctx, spec.Workers, len(grid), func(i int) error {
		cs := grid[i]
		if compileHook != nil {
			compileHook(cs)
		}
		cd := devs[cs.Cycle]
		if cd.err != nil {
			return cd.err
		}
		p := prog
		if cs.Optimize {
			p = optimized
		}
		a, err := allocator(cs)
		if err != nil {
			return err
		}
		m, err := mover(cs)
		if err != nil {
			return err
		}
		t0 := time.Now()
		comp, err := core.CompileWith(cd.dev, p, core.Options{Seed: cs.Seed}, a, m)
		if err != nil {
			return fmt.Errorf("%s: %w", cs.Label(), err)
		}
		if err := comp.Verify(cd.dev); err != nil {
			return fmt.Errorf("%s: verification: %w", cs.Label(), err)
		}
		prep := sim.Prepare(d, comp.Routed.Physical, sim.Config{Trials: spec.Trials})
		stats := comp.Routed.Physical.Stats()
		cands[i] = &Candidate{
			CandidateSpec: cs,
			Swaps:         comp.Swaps(),
			Instructions:  stats.Total,
			Depth:         stats.Depth,
			AnalyticPST:   prep.AnalyticPST(),
			CompileNs:     time.Since(t0).Nanoseconds(),
			Compiled:      comp,
		}
		preps[i] = prep
		return nil
	})
	failures := quarantine(grid, cands, err)
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("portfolio: run cancelled: %w", cerr)
	}

	// Stage 2: rank survivors by analytic ESP (ties on ID) and refine
	// the top k with the Monte-Carlo simulator, each candidate on its
	// own derived seed stream.
	survivors := make([]*Candidate, 0, len(cands))
	for _, c := range cands {
		if c != nil {
			survivors = append(survivors, c)
		}
	}
	if len(survivors) == 0 {
		res := &Result{RootSeed: spec.RootSeed, Failures: failures}
		fillResultMeta(res, d, prog, start)
		return res, fmt.Errorf("portfolio: all %d candidates failed", len(grid))
	}
	sort.SliceStable(survivors, func(i, j int) bool {
		if survivors[i].AnalyticPST != survivors[j].AnalyticPST {
			return survivors[i].AnalyticPST > survivors[j].AnalyticPST
		}
		return survivors[i].ID < survivors[j].ID
	})
	k := spec.TopK
	if k > len(survivors) {
		k = len(survivors)
	}
	err = parallel.Collect(ctx, spec.Workers, k, func(i int) error {
		c := survivors[i]
		out := preps[c.ID].Run(sim.Config{
			Trials:  spec.Trials,
			Seed:    deriveSeed(spec.RootSeed, mcStream, c.ID),
			Workers: -1, // the refinement set is the parallel axis
			Kernel:  spec.Kernel,
		})
		c.MCResult = &MC{PST: out.PST, StdErr: out.StdErr, Trials: out.Trials}
		return nil
	})
	if err != nil && ctx.Err() == nil {
		// A refinement failure demotes the candidate to analytic-only
		// ranking; the failure itself is preserved.
		for _, e := range unwrapJoined(err) {
			var pe *parallel.Error
			if errors.As(e, &pe) {
				c := survivors[pe.Index]
				c.MCResult = nil
				failures = append(failures, Failure{CandidateSpec: c.CandidateSpec, Reason: pe.Err.Error(), Err: pe.Err})
			}
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("portfolio: run cancelled: %w", cerr)
	}

	// Final order: the refined set by (MC PST, analytic, ID) ahead of
	// the analytic tail, which keeps its analytic order.
	refined := survivors[:k:k]
	sort.SliceStable(refined, func(i, j int) bool {
		mi, mj := refined[i].MCResult, refined[j].MCResult
		pi, pj := -1.0, -1.0
		if mi != nil {
			pi = mi.PST
		}
		if mj != nil {
			pj = mj.PST
		}
		if pi != pj {
			return pi > pj
		}
		if refined[i].AnalyticPST != refined[j].AnalyticPST {
			return refined[i].AnalyticPST > refined[j].AnalyticPST
		}
		return refined[i].ID < refined[j].ID
	})

	res := &Result{RootSeed: spec.RootSeed, Failures: failures}
	for _, c := range survivors {
		c.Rank = len(res.Candidates) + 1
		res.Candidates = append(res.Candidates, *c)
	}
	fillResultMeta(res, d, prog, start)
	return res, nil
}

// quarantine maps a parallel.Collect error tree back onto the grid,
// producing one Failure per failed candidate in grid order.
func quarantine(grid []CandidateSpec, cands []*Candidate, err error) []Failure {
	if err == nil {
		return nil
	}
	var failures []Failure
	for _, e := range unwrapJoined(err) {
		var pe *parallel.Error
		if errors.As(e, &pe) && pe.Index < len(grid) && cands[pe.Index] == nil {
			failures = append(failures, Failure{
				CandidateSpec: grid[pe.Index],
				Reason:        pe.Err.Error(),
				Err:           pe.Err,
			})
		}
	}
	sort.SliceStable(failures, func(i, j int) bool { return failures[i].ID < failures[j].ID })
	return failures
}

func fillResultMeta(res *Result, d *device.Device, prog *circuit.Circuit, start time.Time) {
	res.Device = d.Topology().Name
	res.DeviceFP = fmt.Sprintf("%016x", d.Fingerprint())
	res.Program = prog.Name
	res.TotalNs = time.Since(start).Nanoseconds()
}

// unwrapJoined flattens an errors.Join tree one level.
func unwrapJoined(err error) []error {
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		return joined.Unwrap()
	}
	return []error{err}
}
