// Package route implements Qubit-Movement policies: given a circuit and an
// initial program→physical mapping, insert SWAP operations so every
// two-qubit gate executes across a real coupling link.
//
// Two routers are provided:
//
//   - AStar: the layer-by-layer search of Zulehner et al. (the paper's
//     baseline), parameterized by cost model. With CostHops it minimizes
//     the number of SWAPs (variation-unaware baseline); with
//     CostReliability it minimizes −log(success probability), which is the
//     paper's Variation-Aware Qubit Movement (VQM, Algorithm 1). The MAH
//     field implements the hop-limited VQM variant.
//
//   - Naive: route each CNOT independently along an arbitrary shortest hop
//     path, modeling the IBM native compiler's movement strategy.
package route

import (
	"fmt"

	"vaq/internal/alloc"
	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/gate"
)

// Result is a routed (physical) program.
type Result struct {
	// Physical is the compiled circuit over physical qubits, including the
	// inserted SWAPs. Measures carry their original classical bits.
	Physical *circuit.Circuit
	// Initial and Final are the program→physical mappings before and after
	// execution (inserted SWAPs displace qubits; the program's own SWAP
	// gates exchange label states in place and leave the mapping alone).
	Initial alloc.Mapping
	Final   alloc.Mapping
	// Swaps is the number of SWAP operations inserted for movement.
	Swaps int
	// Movement lists the indices into Physical.Gates of the inserted
	// movement SWAPs, distinguishing them from SWAP gates that belong to
	// the program itself (e.g. the TriSwap kernel).
	Movement []int
}

// IsMovement reports whether physical gate index gi is an inserted
// movement SWAP.
func (r *Result) IsMovement(gi int) bool {
	for _, i := range r.Movement {
		if i == gi {
			return true
		}
	}
	return false
}

// Router inserts movement into a circuit under a fixed initial mapping.
type Router interface {
	Name() string
	Route(d *device.Device, c *circuit.Circuit, initial alloc.Mapping) (*Result, error)
}

// Lookahead parameters: how many future layers the SWAP search considers
// and the geometric decay of their weight. Matching Zulehner et al.'s
// lookahead scheme, this discourages layer-locally optimal routes that
// scatter qubits a later layer needs together.
const (
	lookaheadDepth = 4
	lookaheadDecay = 0.5
)

// CostModel selects the objective the A* router minimizes.
type CostModel int

const (
	// CostHops charges 1 per SWAP: the baseline's uniform-cost assumption.
	CostHops CostModel = iota
	// CostReliability charges −ln((1−e)³) per SWAP across a link with
	// error rate e: VQM's objective.
	CostReliability
)

func (cm CostModel) String() string {
	if cm == CostHops {
		return "hops"
	}
	return "reliability"
}

// AStar is the layer-by-layer SWAP-insertion search.
type AStar struct {
	Cost CostModel
	// MAH, when ≥ 0, limits the extra SWAPs per layer transition to the
	// minimum hop requirement plus MAH (the paper's Maximum Additional
	// Hops knob; the paper evaluates MAH=4). Negative means unlimited.
	MAH int
	// MaxExpansions caps the A* search per layer; 0 means the default
	// (50000). On exhaustion the router falls back to greedy path routing,
	// so compilation always succeeds on a connected machine.
	MaxExpansions int
}

func (r AStar) Name() string {
	switch {
	case r.Cost == CostHops:
		return "astar-hops"
	case r.MAH >= 0:
		return fmt.Sprintf("astar-reliability-mah%d", r.MAH)
	default:
		return "astar-reliability"
	}
}

// Route compiles c onto d starting from initial.
//
// The cost tables are memoized per (device fingerprint, cost model) — see
// cache.go — and every search buffer comes from a pooled scratch, so in a
// warmed-up compile loop routing allocates only the output circuit.
func (r AStar) Route(d *device.Device, c *circuit.Circuit, initial alloc.Mapping) (*Result, error) {
	if err := prepare(d, c, initial); err != nil {
		return nil, err
	}
	cm := cachedCosts(d, r.Cost)
	cm.ensureAdj() // the A* heuristic reads adjCost/adjHops
	maxExp := r.MaxExpansions
	if maxExp <= 0 {
		maxExp = 50000
	}

	out := circuit.New(c.Name, d.NumQubits())
	out.NumCBits = c.NumCBits
	m := initial.Clone()
	swaps := 0
	var movement []int
	var ops opSlab

	sc := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(sc)
	sc.setup(c.NumQubits, d.NumQubits())

	layers := c.Layers()
	sc.buildLayerPairs(func(li int) [][2]int { return layerPairs(c, layers[li]) }, len(layers))
	for li, layer := range layers {
		pairs := sc.layerPairsAt(li)
		// Lookahead (as in Zulehner et al.): bias this layer's SWAP choice
		// toward mappings that also keep the next layers' CNOT partners
		// close, with geometrically decaying weight. Purely a tie-breaker
		// in the search heuristic; the goal is still the current layer.
		sc.future = sc.future[:0]
		sc.futureW = sc.futureW[:0]
		weight := lookaheadDecay
		for lj := li + 1; lj < len(layers) && lj <= li+lookaheadDepth; lj++ {
			for _, pr := range sc.layerPairsAt(lj) {
				sc.future = append(sc.future, pr)
				sc.futureW = append(sc.futureW, weight)
			}
			weight *= lookaheadDecay
		}
		plan, ok := r.searchSwaps(cm, sc, m, pairs, sc.future, sc.futureW, maxExp)
		if ok {
			for _, sw := range plan {
				emitSwap(out, m, sw, &ops)
				swaps++
				movement = append(movement, len(out.Gates)-1)
			}
			for _, gi := range layer {
				emitGate(out, c.Gates[gi], m, &ops)
			}
			continue
		}
		// Search exhausted (expansion cap or infeasible MAH budget): fall
		// back to routing the layer's gates one at a time, which is always
		// correct on a connected machine.
		for _, gi := range layer {
			g := c.Gates[gi]
			if g.Kind.TwoQubit() {
				for _, sw := range r.pairPlan(cm, m[g.Qubits[0]], m[g.Qubits[1]]) {
					emitSwap(out, m, sw, &ops)
					swaps++
					movement = append(movement, len(out.Gates)-1)
				}
			}
			emitGate(out, c.Gates[gi], m, &ops)
		}
	}
	return &Result{Physical: out, Initial: initial.Clone(), Final: m, Swaps: swaps, Movement: movement}, nil
}

// prepare validates router inputs.
func prepare(d *device.Device, c *circuit.Circuit, initial alloc.Mapping) error {
	if len(initial) != c.NumQubits {
		return fmt.Errorf("route: mapping covers %d qubits, program has %d", len(initial), c.NumQubits)
	}
	if err := initial.Validate(d.NumQubits()); err != nil {
		return fmt.Errorf("route: %w", err)
	}
	if !d.Topology().Connected() {
		return fmt.Errorf("route: device %q is not connected", d.Topology().Name)
	}
	return nil
}

// physPair is a physical SWAP: exchange the contents of qubits U and V.
type physPair struct{ U, V int }

// layerPairs returns the layer's two-qubit gates as program-qubit pairs.
// Already-adjacent pairs are included; the search treats them as satisfied
// at zero cost.
func layerPairs(c *circuit.Circuit, layer []int) [][2]int {
	var pairs [][2]int
	for _, gi := range layer {
		g := c.Gates[gi]
		if g.Kind.TwoQubit() {
			pairs = append(pairs, [2]int{g.Qubits[0], g.Qubits[1]})
		}
	}
	return pairs
}

// opSlab hands out operand slices for emitted gates in 1 KiB chunks, so a
// routed circuit performs one allocation per ~512 gates instead of one per
// gate. The slices are retained by the output circuit, so the slab is
// per-Route and never pooled; exhausted chunks stay alive through the gate
// slices that point into them.
type opSlab struct{ buf []int }

func (s *opSlab) take(n int) []int {
	if len(s.buf) < n {
		size := 1024
		if n > size {
			size = n
		}
		s.buf = make([]int, size)
	}
	out := s.buf[:n:n]
	s.buf = s.buf[n:]
	return out
}

// emitSwap appends the SWAP to the output circuit and updates the
// program→physical mapping for any program qubits it displaces.
func emitSwap(out *circuit.Circuit, m alloc.Mapping, sw physPair, ops *opSlab) {
	qs := ops.take(2)
	qs[0], qs[1] = sw.U, sw.V
	out.Append(circuit.Gate{Kind: gate.SWAP, Qubits: qs, CBit: -1})
	for p, phys := range m {
		switch phys {
		case sw.U:
			m[p] = sw.V
		case sw.V:
			m[p] = sw.U
		}
	}
}

// emitGate appends gate g with operands mapped through m.
func emitGate(out *circuit.Circuit, g circuit.Gate, m alloc.Mapping, ops *opSlab) {
	qs := ops.take(len(g.Qubits))
	for i, q := range g.Qubits {
		qs[i] = m[q]
	}
	out.Append(circuit.Gate{Kind: g.Kind, Qubits: qs, Param: g.Param, CBit: g.CBit})
}

// Naive routes each two-qubit gate independently: if its operands are not
// adjacent, it swaps the control along an arbitrary minimum-hop path until
// they are. No layer lookahead, no cost model — the movement half of the
// paper's "IBM native compiler" comparator.
type Naive struct{}

func (Naive) Name() string { return "naive" }

func (Naive) Route(d *device.Device, c *circuit.Circuit, initial alloc.Mapping) (*Result, error) {
	if err := prepare(d, c, initial); err != nil {
		return nil, err
	}
	out := circuit.New(c.Name, d.NumQubits())
	out.NumCBits = c.NumCBits
	m := initial.Clone()
	hop := d.HopGraph()
	swaps := 0
	var movement []int
	var ops opSlab
	for _, g := range c.Gates {
		if g.Kind.TwoQubit() {
			src, dst := m[g.Qubits[0]], m[g.Qubits[1]]
			if !d.Topology().Adjacent(src, dst) {
				path, _, ok := hop.ShortestPath(src, dst)
				if !ok {
					return nil, fmt.Errorf("route: no path %d→%d", src, dst)
				}
				// Swap the control down the path until adjacent to dst.
				for i := 0; i+2 < len(path); i++ {
					emitSwap(out, m, physPair{path[i], path[i+1]}, &ops)
					swaps++
					movement = append(movement, len(out.Gates)-1)
				}
			}
		}
		emitGate(out, g, m, &ops)
	}
	return &Result{Physical: out, Initial: initial.Clone(), Final: m, Swaps: swaps, Movement: movement}, nil
}
