package route

import (
	"testing"

	"vaq/internal/alloc"
	"vaq/internal/circuit"
	"vaq/internal/topo"
)

// TestPackerNoTruncationCollision pins the fix for the latent stateKey
// truncation bug: the old encoding wrote each mapping entry as byte(v), so
// on a machine with more than 256 physical qubits the mappings {1, 258}
// and {1, 2} produced the same search key (byte(258) == byte(2)) and A*
// could merge distinct states. The packed encoding sizes its field width
// from the physical qubit count, so those keys must differ.
func TestPackerNoTruncationCollision(t *testing.T) {
	p := newPacker(2, 300)
	if !p.fits {
		t.Fatal("2 program qubits on 300 physical must fit the packed key")
	}
	aliased := 258
	if byte(aliased) != byte(2) {
		t.Fatal("test premise: byte truncation aliases 258 and 2")
	}
	if p.pack([]int{1, 258}) == p.pack([]int{1, 2}) {
		t.Fatal("packed keys collide for mappings {1,258} and {1,2}")
	}
	// Every pair of distinct placements of one qubit must key distinctly.
	seen := make(map[packedKey]int)
	for v := 0; v < 300; v++ {
		k := p.pack([]int{v, 299 - v})
		if prev, dup := seen[k]; dup {
			t.Fatalf("packed key collision: mappings with v=%d and v=%d", prev, v)
		}
		seen[k] = v
	}
}

// TestRouteBeyond255Qubits routes across physical index 256 on a 300-qubit
// line — the exact regime where the old byte-truncated state keys aliased.
// The pair starts 12 links apart (250 and 262), so a correct search inserts
// exactly 11 SWAPs; a key collision would merge distinct frontier states
// and could corrupt the plan.
func TestRouteBeyond255Qubits(t *testing.T) {
	d := uniformDevice(topo.Linear(300), 0.01)
	c := circuit.New("far", 2).CX(0, 1).MeasureAll()
	init := alloc.Mapping{250, 262}
	for _, r := range []Router{
		AStar{Cost: CostHops, MAH: -1},
		AStar{Cost: CostReliability, MAH: -1},
	} {
		res, err := r.Route(d, c, init)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if res.Swaps != 11 {
			t.Fatalf("%s: inserted %d swaps, want 11 (distance 12 on a line)", r.Name(), res.Swaps)
		}
		if err := Verify(d, c, res); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
	}
}

// TestRouteStringKeyFallback drives the width-safe string-key path: 30
// program qubits on a 300-qubit line need 9 bits per entry, which
// overflows the 256-bit packed key (4×7 entries), so the search must fall
// back to string keys — and still route correctly.
func TestRouteStringKeyFallback(t *testing.T) {
	const k, n = 30, 300
	if newPacker(k, n).fits {
		t.Fatalf("test premise: %d entries × 9 bits must not fit a packedKey", k)
	}
	d := uniformDevice(topo.Linear(n), 0.01)
	c := circuit.New("chain", k)
	for i := 0; i+1 < k; i++ {
		c.CX(i, i+1)
	}
	c.MeasureAll()
	init := make(alloc.Mapping, k)
	for i := range init {
		init[i] = 2 * i // every CNOT pair starts one link short of adjacency
	}
	res, err := AStar{Cost: CostReliability, MAH: -1}.Route(d, c, init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 {
		t.Fatal("expected movement for gapped placements")
	}
	if err := Verify(d, c, res); err != nil {
		t.Fatal(err)
	}
}
