package route

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"vaq/internal/circuit"
	"vaq/internal/workloads"
)

// TestSabreConcurrentDeterminism routes the same input from many
// goroutines at GOMAXPROCS 1, 2 and the machine default, sharing one
// warm cost cache, and requires every result to hash identically. This
// is the bit-determinism contract: no map iteration, no scratch-state
// leakage, no dependence on scheduling.
func TestSabreConcurrentDeterminism(t *testing.T) {
	d := goldenQ20()
	c := workloads.QFT(10)
	init := permInit(7)(d, c)
	r := Sabre{Cost: CostReliability}

	ref, err := r.Route(d, c, init)
	if err != nil {
		t.Fatal(err)
	}
	want := resultHash(ref)

	for _, procs := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		prev := runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		hashes := make([]uint64, 8)
		for i := range hashes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := r.Route(d, c, init)
				if err != nil {
					t.Error(err)
					return
				}
				hashes[i] = resultHash(res)
			}(i)
		}
		wg.Wait()
		runtime.GOMAXPROCS(prev)
		for i, h := range hashes {
			if h != want {
				t.Fatalf("GOMAXPROCS=%d goroutine %d: hash 0x%016x, want 0x%016x", procs, i, h, want)
			}
		}
	}
}

// TestSabreHeavyHex399 routes a 60-qubit QFT slice on the 399-qubit
// heavy-hex fleet and verifies the output — the large-device smoke the
// A* router cannot attempt (its adjacency build alone is O(n²·|E|)).
// Kept -short-friendly: one route, no Monte-Carlo.
func TestSabreHeavyHex399(t *testing.T) {
	d := goldenHH399()
	c := workloads.BV(60)
	init := permInit(5)(d, c)
	r := Sabre{Cost: CostHops}
	res, err := r.Route(d, c, init)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(d, c, res); err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 {
		t.Error("expected a scattered 60-qubit BV to need swaps on heavy-hex-399")
	}
}

// TestSabreBarriers: barriers gate ordering inside the dependency DAG
// but are never emitted, matching the A* routers' treatment.
func TestSabreBarriers(t *testing.T) {
	d := goldenQ5()
	c := circuit.New("barrier", 3)
	c.H(0).CX(0, 1).Barrier().CX(1, 2).MeasureAll()
	res, err := Sabre{Cost: CostReliability}.Route(d, c, identity(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Physical.Gates {
		if g.Kind.String() == "barrier" {
			t.Fatal("barrier leaked into physical circuit")
		}
	}
	if err := Verify(d, c, res); err != nil {
		t.Fatal(err)
	}
}

// TestSabreAdjacentNeedsNoSwaps: a program already conformant with the
// coupling map routes swap-free.
func TestSabreAdjacentNeedsNoSwaps(t *testing.T) {
	d := ring5Fig1()
	c := circuit.New("adj", 2).H(0).CX(0, 1).MeasureAll()
	res, err := Sabre{Cost: CostHops}.Route(d, c, identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps != 0 {
		t.Fatalf("adjacent CX routed with %d swaps", res.Swaps)
	}
}

// TestMovementByName pins the movement-policy registry: every published
// name resolves, and unknown names fail with an error that lists the
// valid policies (the nisqc/nisqd UX contract).
func TestMovementByName(t *testing.T) {
	wantRouters := map[string]string{
		MovementBaseline:  "astar-hops",
		MovementVQM:       "astar-reliability",
		MovementVQMHop:    "astar-reliability-mah4",
		MovementSabre:     "sabre-reliability",
		MovementSabreHops: "sabre-hops",
	}
	names := MovementNames()
	if len(names) != len(wantRouters) {
		t.Fatalf("MovementNames() = %v, want %d entries", names, len(wantRouters))
	}
	for _, name := range names {
		r, err := ByName(name, 4)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if r.Name() != wantRouters[name] {
			t.Errorf("ByName(%q) → router %q, want %q", name, r.Name(), wantRouters[name])
		}
	}
	_, err := ByName("teleport", 0)
	if err == nil {
		t.Fatal("ByName(\"teleport\"): want error")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-policy error %q does not list %q", err, name)
		}
	}
}
