package route

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"vaq/internal/alloc"
	"vaq/internal/circuit"
	"vaq/internal/topo"
	"vaq/internal/workloads"
)

func TestVerifyStateQFTThroughEveryRouter(t *testing.T) {
	// QFT is the paper's hardest communication pattern AND non-Clifford:
	// only the state-vector check can validate it exactly.
	d := uniformDevice(topo.IBMQ5(), 0.04)
	prog := workloads.QFT(5)
	init := alloc.Mapping{3, 0, 4, 1, 2}
	for _, r := range []Router{
		AStar{Cost: CostHops, MAH: -1},
		AStar{Cost: CostReliability, MAH: -1},
		AStar{Cost: CostReliability, MAH: 4},
		Naive{},
	} {
		res, err := r.Route(d, prog, init)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if err := VerifyState(d, prog, res, 0); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
	}
}

func TestVerifyStateALU(t *testing.T) {
	// The 10-qubit Toffoli-decomposed adder on a 16-qubit ladder.
	d := uniformDevice(topo.IBMQ16(), 0.04)
	prog := workloads.ALU()
	init := make(alloc.Mapping, 10)
	copy(init, rand.New(rand.NewSource(2)).Perm(16)[:10])
	res, err := AStar{Cost: CostReliability, MAH: -1}.Route(d, prog, init)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyState(d, prog, res, 0); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyStateCatchesTampering(t *testing.T) {
	d := uniformDevice(topo.Linear(3), 0.04)
	prog := circuit.New("p", 2).H(0).T(0).CX(0, 1)
	res, err := AStar{Cost: CostHops, MAH: -1}.Route(d, prog, identity(2))
	if err != nil {
		t.Fatal(err)
	}
	bad := &Result{Physical: res.Physical.Clone().T(1), Initial: res.Initial, Final: res.Final}
	if VerifyState(d, prog, bad, 0) == nil {
		t.Fatal("extra T gate passed state verification")
	}
}

func TestVerifyStateTooLarge(t *testing.T) {
	d := uniformDevice(topo.IBMQ20(), 0.04)
	prog := workloads.BV(4)
	res, err := AStar{Cost: CostHops, MAH: -1}.Route(d, prog, alloc.Mapping{0, 1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyState(d, prog, res, 10); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge for a 20-qubit device at cap 10", err)
	}
	// With a loose cap the same result verifies.
	if err := VerifyState(d, prog, res, 20); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyStateRandomNonCliffordProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := uniformDevice(topo.IBMQ5(), 0.05)
		n := 2 + rng.Intn(4)
		c := circuit.New("nc", n)
		for i := 0; i < 16; i++ {
			a := rng.Intn(n)
			switch rng.Intn(5) {
			case 0:
				c.H(a)
			case 1:
				c.T(a)
			case 2:
				c.RZ(rng.Float64()*2-1, a)
			default:
				b := (a + 1 + rng.Intn(n-1)) % n
				c.CX(a, b)
			}
		}
		init := make(alloc.Mapping, n)
		copy(init, rng.Perm(5)[:n])
		r := []Router{
			AStar{Cost: CostHops, MAH: -1},
			AStar{Cost: CostReliability, MAH: -1},
			Naive{},
		}[rng.Intn(3)]
		res, err := r.Route(d, c, init)
		if err != nil {
			t.Logf("route: %v", err)
			return false
		}
		if err := VerifyState(d, c, res, 0); err != nil {
			t.Logf("%s: %v", r.Name(), err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
