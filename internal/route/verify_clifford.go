package route

import (
	"fmt"

	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/gate"
	"vaq/internal/stabilizer"
)

// VerifyClifford checks a routing result at the quantum-state level:
// for Clifford programs (Bernstein–Vazirani, GHZ, TriSwap, …) it runs the
// routed physical circuit on the stabilizer simulator, undoes the
// residual qubit permutation (Final vs Initial mapping), and demands the
// exact state the logical circuit prepares when its gates are applied at
// the initial physical locations. This subsumes the structural Verify
// check with true quantum semantics; non-Clifford programs return
// ErrNotClifford.
func VerifyClifford(d *device.Device, logical *circuit.Circuit, res *Result) error {
	if !stabilizer.IsClifford(logical) {
		return ErrNotClifford
	}
	n := d.NumQubits()

	// State A: the physical circuit, then SWAPs returning every program
	// qubit from its final to its initial location.
	got, err := stabilizer.Run(res.Physical)
	if err != nil {
		return fmt.Errorf("verify-clifford: physical circuit: %w", err)
	}
	for _, sw := range permutationSwaps(res.Initial, res.Final, n) {
		got.Swap(sw.U, sw.V)
	}

	// State B: the logical gates applied directly at the initial physical
	// locations (the stabilizer simulator has no connectivity limits).
	want := stabilizer.New(n)
	for _, g := range logical.Gates {
		if g.Kind == gate.Measure || g.Kind == gate.Barrier {
			continue
		}
		mapped := circuit.Gate{Kind: g.Kind, Param: g.Param, CBit: g.CBit}
		mapped.Qubits = make([]int, len(g.Qubits))
		for i, q := range g.Qubits {
			mapped.Qubits[i] = res.Initial[q]
		}
		if err := want.Apply(mapped); err != nil {
			return fmt.Errorf("verify-clifford: logical circuit: %w", err)
		}
	}

	if !stabilizer.Equal(got, want) {
		return fmt.Errorf("verify-clifford: compiled circuit prepares a different quantum state")
	}
	return nil
}

// ErrNotClifford marks programs outside the stabilizer formalism; callers
// fall back to the structural Verify.
var ErrNotClifford = fmt.Errorf("route: program is not a Clifford circuit")

// permutationSwaps returns transpositions that move each program qubit
// from final[p] back to initial[p]. The mapped positions define a partial
// map; the unmapped physical qubits (all |0⟩, so permuting them is a
// no-op on the state) fill the remaining slots to complete it into a
// permutation, which is then decomposed into cycles.
func permutationSwaps(initial, final []int, n int) []physPair {
	perm := make([]int, n) // perm[src] = destination of src's content
	for i := range perm {
		perm[i] = -1
	}
	usedDst := make([]bool, n)
	for p := range initial {
		perm[final[p]] = initial[p]
		usedDst[initial[p]] = true
	}
	free := 0
	for src := 0; src < n; src++ {
		if perm[src] != -1 {
			continue
		}
		for usedDst[free] {
			free++
		}
		perm[src] = free
		usedDst[free] = true
	}
	// Cycle decomposition: for a cycle c0→c1→…→ck→c0 the transposition
	// sequence (c0,c1), (c0,c2), …, (c0,ck) realizes it.
	visited := make([]bool, n)
	var swaps []physPair
	for s := 0; s < n; s++ {
		if visited[s] || perm[s] == s {
			visited[s] = true
			continue
		}
		cycle := []int{s}
		visited[s] = true
		for t := perm[s]; t != s; t = perm[t] {
			visited[t] = true
			cycle = append(cycle, t)
		}
		for i := 1; i < len(cycle); i++ {
			swaps = append(swaps, physPair{cycle[0], cycle[i]})
		}
	}
	return swaps
}
