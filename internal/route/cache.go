package route

import (
	"sync"

	"vaq/internal/device"
	"vaq/internal/metrics"
)

// The cost cache memoizes the per-device search tables (two all-pairs
// distance matrices plus two adjacency-cost matrices — O(n²·|E|) to
// build) across Route calls. The experiment harness compiles every
// workload across 104 calibration days × several policies × several
// candidate allocations, and before this cache each of those compiles
// rebuilt identical tables from scratch; with it, each (calibration,
// cost-model) pair is built exactly once per process.
//
// The key is device.Device.Fingerprint() — an exact digest of the
// topology and every calibration figure — paired with the cost model.
// Recalibrating (a new snapshot) or restricting the device (Section 8
// partitioning) changes the fingerprint, so stale tables can never be
// served; distinct Device values wrapping identical calibration data
// share one table, which is what the per-day sweep wants.
//
// Entries are built under a per-key sync.Once so concurrent Route calls
// on a new device build the table once and everyone else blocks on that
// build rather than duplicating it. The finished *costs value is
// immutable, so sharing it across goroutines is race-free.

type costKey struct {
	fp    uint64
	model CostModel
}

type costEntry struct {
	once sync.Once
	cm   *costs
}

var (
	costMu    sync.Mutex
	costTable = make(map[costKey]*costEntry)
	// cacheStats counts table lookups: a hit is an existing entry (even
	// one still being built under its Once), a miss creates an entry, and
	// an eviction counts every entry dropped by the overflow sweep. Large
	// synthetic fleets churn fingerprints; these counters make that churn
	// visible at /metrics as nisqd_route_cache_*.
	cacheStats metrics.CacheCounters
)

// CacheStats reads the cost-cache hit/miss/eviction counters.
func CacheStats() metrics.CacheSnapshot { return cacheStats.Snapshot() }

// CacheLen reports the number of memoized cost tables.
func CacheLen() int {
	costMu.Lock()
	defer costMu.Unlock()
	return len(costTable)
}

// maxCostEntries bounds the cache. A 104-day sweep needs 2 models × 104
// fingerprints ≈ 208 live entries; the bound only matters for pathological
// churn (e.g. fuzzing over thousands of synthetic devices), where the
// whole table is dropped and rebuilt rather than tracking recency.
const maxCostEntries = 1024

// cachedCosts returns the memoized search tables for (d, model),
// building them on first use.
func cachedCosts(d *device.Device, model CostModel) *costs {
	key := costKey{fp: d.Fingerprint(), model: model}
	costMu.Lock()
	e, ok := costTable[key]
	if !ok {
		if len(costTable) >= maxCostEntries {
			cacheStats.Evict(uint64(len(costTable)))
			costTable = make(map[costKey]*costEntry, maxCostEntries/4)
		}
		e = &costEntry{}
		costTable[key] = e
	}
	costMu.Unlock()
	if ok {
		cacheStats.Hit()
	} else {
		cacheStats.Miss()
	}
	e.once.Do(func() { e.cm = newCosts(d, model) })
	return e.cm
}

// resetCostCache drops every memoized table (test hook).
func resetCostCache() {
	costMu.Lock()
	costTable = make(map[costKey]*costEntry)
	costMu.Unlock()
}

// costCacheLen reports the number of cached tables (test hook).
func costCacheLen() int {
	costMu.Lock()
	defer costMu.Unlock()
	return len(costTable)
}
