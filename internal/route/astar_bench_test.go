package route

import (
	"testing"

	"vaq/internal/workloads"
)

// BenchmarkNewCosts measures a cold cost-table build for the Q20 machine:
// two all-pairs distance matrices plus the adjacency tables (forced here,
// since they are otherwise built lazily on first A* use). This is the
// work the cost cache amortizes away.
func BenchmarkNewCosts(b *testing.B) {
	d := goldenQ20()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm := newCosts(d, CostReliability)
		if cm == nil {
			b.Fatal("nil cost table")
		}
		cm.ensureAdj()
	}
}

// BenchmarkSearchSwaps measures one packed-state A* search over a dense
// layer on IBM Q20: four simultaneous CNOT pairs, each a few hops apart,
// under identity placement. Exercises the hot path in isolation — slab
// states, packed keys, the custom open heap — without circuit emission.
func BenchmarkSearchSwaps(b *testing.B) {
	d := goldenQ20()
	cm := cachedCosts(d, CostReliability)
	cm.ensureAdj() // searchSwaps is called below without going through Route
	r := AStar{Cost: CostReliability, MAH: -1}
	m := identity(20)
	pairs := [][2]int{{0, 7}, {5, 12}, {10, 17}, {4, 13}}

	sc := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(sc)
	sc.setup(20, 20)
	sc.buildLayerPairs(func(int) [][2]int { return pairs }, 1)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, ok := r.searchSwaps(cm, sc, m, pairs, nil, nil, 50000)
		if !ok || len(plan) == 0 {
			b.Fatalf("search failed: ok=%v plan=%v", ok, plan)
		}
	}
}

// BenchmarkRouteCached routes BV-16 with the cost tables already memoized:
// the steady state of a calibration sweep, where routing cost is the search
// plus output emission only.
func BenchmarkRouteCached(b *testing.B) {
	d := goldenQ20()
	c := workloads.BV(16)
	init := identity(c.NumQubits)
	r := AStar{Cost: CostReliability, MAH: -1}
	if _, err := r.Route(d, c, init); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Route(d, c, init); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteCold is BenchmarkRouteCached with the cache dropped every
// iteration, so each Route pays the full cost-table build. The gap between
// the two is the per-compile saving the cache buys.
func BenchmarkRouteCold(b *testing.B) {
	d := goldenQ20()
	c := workloads.BV(16)
	init := identity(c.NumQubits)
	r := AStar{Cost: CostReliability, MAH: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resetCostCache()
		if _, err := r.Route(d, c, init); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	resetCostCache()
}
