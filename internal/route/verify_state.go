package route

import (
	"fmt"
	"math"

	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/gate"
	"vaq/internal/statevec"
)

// VerifyState checks a routing result with the dense state-vector
// simulator: the routed physical circuit, un-permuted by the residual
// mapping, must prepare the same quantum state (fidelity ≈ 1) as the
// logical circuit applied at the initial physical locations. This covers
// the non-Clifford programs (QFT, ALU) that VerifyClifford cannot, at the
// cost of 2^n amplitudes — ErrTooLarge is returned beyond maxQubits
// (default 16 when maxQubits ≤ 0).
func VerifyState(d *device.Device, logical *circuit.Circuit, res *Result, maxQubits int) error {
	if maxQubits <= 0 {
		maxQubits = 16
	}
	n := d.NumQubits()
	if n > maxQubits || n > statevec.MaxQubits {
		return ErrTooLarge
	}
	if !statevec.Supported(res.Physical) || !statevec.Supported(logical) {
		return fmt.Errorf("route: circuit contains gates the state-vector simulator cannot replay")
	}

	got := statevec.New(n)
	for _, g := range res.Physical.Gates {
		if err := got.Apply(g); err != nil {
			return fmt.Errorf("verify-state: physical circuit: %w", err)
		}
	}
	for _, sw := range permutationSwaps(res.Initial, res.Final, n) {
		got.Swap(sw.U, sw.V)
	}

	want := statevec.New(n)
	for _, g := range logical.Gates {
		if g.Kind == gate.Measure || g.Kind == gate.Barrier {
			continue
		}
		mapped := circuit.Gate{Kind: g.Kind, Param: g.Param, CBit: g.CBit}
		mapped.Qubits = make([]int, len(g.Qubits))
		for i, q := range g.Qubits {
			mapped.Qubits[i] = res.Initial[q]
		}
		if err := want.Apply(mapped); err != nil {
			return fmt.Errorf("verify-state: logical circuit: %w", err)
		}
	}

	if f := statevec.Fidelity(got, want); math.Abs(f-1) > 1e-6 {
		return fmt.Errorf("verify-state: compiled circuit fidelity %v, want 1", f)
	}
	return nil
}

// ErrTooLarge marks devices whose state vector would not fit; callers
// fall back to VerifyClifford or the structural Verify.
var ErrTooLarge = fmt.Errorf("route: device too large for state-vector verification")
