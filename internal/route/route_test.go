package route

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vaq/internal/alloc"
	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/gate"
	"vaq/internal/topo"
)

// uniformDevice builds a device with uniform link error e over topology tp.
func uniformDevice(tp *topo.Topology, e float64) *device.Device {
	s := calib.NewSnapshot(tp)
	for _, c := range tp.Couplings {
		s.TwoQubit[c] = e
	}
	for q := 0; q < tp.NumQubits; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.03
		s.T1Us[q], s.T2Us[q] = 80, 40
	}
	return device.MustNew(tp, s)
}

// ring5Fig1 builds the paper's Figure 1 machine: ring A-B-C-D-E with
// success probabilities 0.7 (A-B), 0.6 (B-C), 0.9 (A-E, E-D, D-C).
func ring5Fig1() *device.Device {
	tp := topo.Ring5()
	s := calib.NewSnapshot(tp)
	s.SetTwoQubitError(0, 1, 0.3) // A-B: success 0.7
	s.SetTwoQubitError(1, 2, 0.4) // B-C: success 0.6
	s.SetTwoQubitError(0, 4, 0.1) // A-E
	s.SetTwoQubitError(3, 4, 0.1) // E-D
	s.SetTwoQubitError(2, 3, 0.1) // D-C
	for q := 0; q < 5; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.03
		s.T1Us[q], s.T2Us[q] = 80, 40
	}
	return device.MustNew(tp, s)
}

func identity(n int) alloc.Mapping {
	m := make(alloc.Mapping, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func TestAStarNoSwapsWhenAdjacent(t *testing.T) {
	d := uniformDevice(topo.Linear(3), 0.05)
	c := circuit.New("adj", 2).CX(0, 1)
	res, err := AStar{Cost: CostHops, MAH: -1}.Route(d, c, identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps != 0 {
		t.Fatalf("swaps = %d, want 0", res.Swaps)
	}
	if err := Verify(d, c, res); err != nil {
		t.Fatal(err)
	}
}

func TestAStarInsertsMinimalSwapsOnChain(t *testing.T) {
	// CX between ends of a 4-chain needs 2 swaps minimum.
	d := uniformDevice(topo.Linear(4), 0.05)
	c := circuit.New("far", 4).CX(0, 3)
	res, err := AStar{Cost: CostHops, MAH: -1}.Route(d, c, identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps != 2 {
		t.Fatalf("swaps = %d, want 2", res.Swaps)
	}
	if err := Verify(d, c, res); err != nil {
		t.Fatal(err)
	}
}

func TestVQMPrefersReliableDetourFigure1(t *testing.T) {
	// Paper Figure 1(b): entangle Q1 (at A=0) with Q3 (at C=2). Hop
	// baseline uses A-B-C (1 swap, success 0.7³·0.6=0.2058). VQM takes
	// A-E-D-C (2 swaps over 0.9 links, success 0.9³·0.9³·0.9 ≈ 0.478).
	d := ring5Fig1()
	c := circuit.New("fig1", 3).CX(0, 2)
	init := alloc.Mapping{0, 1, 2} // Q1→A, Q2→B, Q3→C

	base, err := AStar{Cost: CostHops, MAH: -1}.Route(d, c, init)
	if err != nil {
		t.Fatal(err)
	}
	vqm, err := AStar{Cost: CostReliability, MAH: -1}.Route(d, c, init)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(d, c, base); err != nil {
		t.Fatal(err)
	}
	if err := Verify(d, c, vqm); err != nil {
		t.Fatal(err)
	}
	if base.Swaps != 1 {
		t.Fatalf("baseline swaps = %d, want 1 (shortest route)", base.Swaps)
	}
	if vqm.Swaps != 2 {
		t.Fatalf("VQM swaps = %d, want 2 (reliable detour)", vqm.Swaps)
	}
	// VQM's route must be strictly more reliable.
	if ps, pb := successProduct(d, vqm.Physical), successProduct(d, base.Physical); ps <= pb {
		t.Fatalf("VQM success %v not better than baseline %v", ps, pb)
	}
}

// successProduct multiplies the success probability of every gate in a
// physical circuit (ignores coherence; enough for route comparisons).
func successProduct(d *device.Device, c *circuit.Circuit) float64 {
	p := 1.0
	for _, g := range c.Gates {
		p *= d.GateSuccess(g.Kind, g.Qubits)
	}
	return p
}

func TestMAHZeroForcesShortestRoute(t *testing.T) {
	// With MAH=0, VQM may not take the longer detour: it must use a
	// minimum-swap route even though it is less reliable.
	d := ring5Fig1()
	c := circuit.New("fig1", 3).CX(0, 2)
	init := alloc.Mapping{0, 1, 2}
	res, err := AStar{Cost: CostReliability, MAH: 0}.Route(d, c, init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps != 1 {
		t.Fatalf("MAH=0 swaps = %d, want 1", res.Swaps)
	}
	if err := Verify(d, c, res); err != nil {
		t.Fatal(err)
	}
}

func TestMAHLargeMatchesUnlimited(t *testing.T) {
	d := ring5Fig1()
	c := circuit.New("fig1", 3).CX(0, 2)
	init := alloc.Mapping{0, 1, 2}
	free, _ := AStar{Cost: CostReliability, MAH: -1}.Route(d, c, init)
	capped, _ := AStar{Cost: CostReliability, MAH: 10}.Route(d, c, init)
	if free.Swaps != capped.Swaps {
		t.Fatalf("loose MAH changed route: %d vs %d swaps", capped.Swaps, free.Swaps)
	}
}

func TestRouteRejectsBadMapping(t *testing.T) {
	d := uniformDevice(topo.Linear(3), 0.05)
	c := circuit.New("c", 2).CX(0, 1)
	if _, err := (AStar{MAH: -1}).Route(d, c, alloc.Mapping{0}); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := (AStar{MAH: -1}).Route(d, c, alloc.Mapping{0, 0}); err == nil {
		t.Fatal("duplicate mapping accepted")
	}
	if _, err := (Naive{}).Route(d, c, alloc.Mapping{0, 9}); err == nil {
		t.Fatal("out-of-range mapping accepted")
	}
}

func TestRouteRejectsDisconnectedDevice(t *testing.T) {
	tp := topo.MustNew("split", 4, []topo.Coupling{{A: 0, B: 1}, {A: 2, B: 3}})
	d := uniformDevice(tp, 0.05)
	c := circuit.New("c", 2).CX(0, 1)
	if _, err := (AStar{MAH: -1}).Route(d, c, alloc.Mapping{0, 2}); err == nil {
		t.Fatal("disconnected device accepted")
	}
}

func TestNaiveRoutesCorrectly(t *testing.T) {
	d := uniformDevice(topo.Linear(5), 0.05)
	c := circuit.New("n", 3).CX(0, 2).H(1).CX(0, 1).MeasureAll()
	init := alloc.Mapping{0, 2, 4}
	res, err := Naive{}.Route(d, c, init)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(d, c, res); err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 {
		t.Fatal("naive router should have inserted swaps for distance-2 pairs")
	}
}

func TestMeasuresFollowDisplacedQubits(t *testing.T) {
	// Force a swap, then measure: the measure must land on the qubit's
	// new physical location with the original classical bit.
	d := uniformDevice(topo.Linear(3), 0.05)
	c := circuit.New("m", 2).CX(0, 1).Measure(0, 0).Measure(1, 1)
	init := alloc.Mapping{0, 2} // not adjacent: needs one swap
	res, err := AStar{Cost: CostHops, MAH: -1}.Route(d, c, init)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(d, c, res); err != nil {
		t.Fatal(err)
	}
	// Find the measure that reads classical bit 0 and confirm it targets
	// program qubit 0's final location.
	for _, g := range res.Physical.Gates {
		if g.Kind == gate.Measure && g.CBit == 0 {
			if g.Qubits[0] != res.Final[0] {
				t.Fatalf("measure of program qubit 0 at %d, final mapping %v", g.Qubits[0], res.Final)
			}
		}
	}
}

func TestVQMDegeneratesToBaselineOnUniformErrors(t *testing.T) {
	// The paper: "In case of no variation in error-rates, our policy
	// selects the path with the minimum number of swaps (identical as a
	// baseline)."
	d := uniformDevice(topo.IBMQ20(), 0.05)
	rng := rand.New(rand.NewSource(4))
	c := circuit.New("r", 8)
	for i := 0; i < 25; i++ {
		a := rng.Intn(8)
		b := (a + 1 + rng.Intn(7)) % 8
		c.CX(a, b)
	}
	init := identity(8)
	base, err := AStar{Cost: CostHops, MAH: -1}.Route(d, c, init)
	if err != nil {
		t.Fatal(err)
	}
	vqm, err := AStar{Cost: CostReliability, MAH: -1}.Route(d, c, init)
	if err != nil {
		t.Fatal(err)
	}
	if base.Swaps != vqm.Swaps {
		t.Fatalf("uniform errors: baseline %d swaps, VQM %d swaps — should match", base.Swaps, vqm.Swaps)
	}
}

func TestRoutersPreserveSemanticsProperty(t *testing.T) {
	devices := []*device.Device{
		uniformDevice(topo.IBMQ20(), 0.05),
		ring5Fig1(),
		uniformDevice(topo.IBMQ5(), 0.04),
	}
	routers := []Router{
		AStar{Cost: CostHops, MAH: -1},
		AStar{Cost: CostReliability, MAH: -1},
		AStar{Cost: CostReliability, MAH: 4},
		Naive{},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := devices[rng.Intn(len(devices))]
		n := 2 + rng.Intn(d.NumQubits()-1)
		c := circuit.New("prop", n)
		for i := 0; i < 15; i++ {
			a := rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				c.H(a)
			case 1:
				c.RZ(rng.Float64(), a)
			default:
				if n > 1 {
					b := (a + 1 + rng.Intn(n-1)) % n
					c.CX(a, b)
				}
			}
		}
		c.MeasureAll()
		init := make(alloc.Mapping, n)
		perm := rng.Perm(d.NumQubits())
		copy(init, perm[:n])
		for _, r := range routers {
			res, err := r.Route(d, c, init)
			if err != nil {
				t.Logf("%s: route error: %v", r.Name(), err)
				return false
			}
			if err := Verify(d, c, res); err != nil {
				t.Logf("%s: verify error: %v", r.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReliabilityBeatsBaselineInAggregate(t *testing.T) {
	// VQM optimizes the product of success probabilities per layer
	// transition; the search is layer-local, so an individual instance can
	// occasionally lose to the baseline, but across many random programs
	// on a skewed device VQM must win in (geometric-mean) aggregate.
	d := ring5Fig1()
	rng := rand.New(rand.NewSource(9))
	logSum := 0.0
	trials := 30
	for trial := 0; trial < trials; trial++ {
		c := circuit.New("t", 4)
		for i := 0; i < 6; i++ {
			a := rng.Intn(4)
			b := (a + 1 + rng.Intn(3)) % 4
			c.CX(a, b)
		}
		init := make(alloc.Mapping, 4)
		copy(init, rng.Perm(5)[:4])
		base, err := AStar{Cost: CostHops, MAH: -1}.Route(d, c, init)
		if err != nil {
			t.Fatal(err)
		}
		vqm, err := AStar{Cost: CostReliability, MAH: -1}.Route(d, c, init)
		if err != nil {
			t.Fatal(err)
		}
		pb, pv := successProduct(d, base.Physical), successProduct(d, vqm.Physical)
		logSum += math.Log(pv / pb)
	}
	if gain := math.Exp(logSum / float64(trials)); gain < 1.0 {
		t.Fatalf("aggregate VQM/baseline success ratio = %v, want ≥ 1", gain)
	}
}

func TestSwapCountsAccounting(t *testing.T) {
	d := uniformDevice(topo.Linear(4), 0.05)
	c := circuit.New("acc", 4).CX(0, 3).CX(0, 3)
	res, err := AStar{Cost: CostHops, MAH: -1}.Route(d, c, identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Physical.Stats().Swaps; got != res.Swaps {
		t.Fatalf("Stats().Swaps = %d, Result.Swaps = %d", got, res.Swaps)
	}
}

func TestCostModelString(t *testing.T) {
	if CostHops.String() != "hops" || CostReliability.String() != "reliability" {
		t.Fatal("CostModel strings wrong")
	}
	if (AStar{Cost: CostReliability, MAH: 4}).Name() != "astar-reliability-mah4" {
		t.Fatalf("name = %s", AStar{Cost: CostReliability, MAH: 4}.Name())
	}
}

func TestGreedyFallbackUnderTinyExpansionCap(t *testing.T) {
	// With MaxExpansions=1 the A* search cannot finish; the greedy
	// fallback must still produce a correct compilation.
	d := uniformDevice(topo.IBMQ20(), 0.05)
	c := circuit.New("g", 6).CX(0, 5).CX(1, 4).CX(2, 3)
	init := alloc.Mapping{0, 4, 10, 14, 9, 19}
	res, err := AStar{Cost: CostReliability, MAH: -1, MaxExpansions: 1}.Route(d, c, init)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(d, c, res); err != nil {
		t.Fatal(err)
	}
}

func TestProgramSwapsAreComputation(t *testing.T) {
	// Regression: a program that itself contains SWAP gates (the paper's
	// TriSwap kernel) must verify — the router distinguishes its inserted
	// movement SWAPs from the program's own.
	d := uniformDevice(topo.IBMQ5(), 0.04)
	prog := circuit.New("triswap", 3).X(0).Swap(0, 1).Swap(1, 2).Swap(0, 1).MeasureAll()
	for _, r := range []Router{
		AStar{Cost: CostHops, MAH: -1},
		AStar{Cost: CostReliability, MAH: -1},
		Naive{},
	} {
		// Non-adjacent initial placement forces movement SWAPs alongside
		// the program SWAPs.
		res, err := r.Route(d, prog, alloc.Mapping{0, 1, 3})
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if err := Verify(d, prog, res); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if err := VerifyClifford(d, prog, res); err != nil {
			t.Fatalf("%s clifford: %v", r.Name(), err)
		}
		// Movement accounting matches the swap counter.
		if len(res.Movement) != res.Swaps {
			t.Fatalf("%s: %d movement indices for %d swaps", r.Name(), len(res.Movement), res.Swaps)
		}
		for _, gi := range res.Movement {
			if res.Physical.Gates[gi].Kind != gate.SWAP {
				t.Fatalf("%s: movement index %d is not a SWAP", r.Name(), gi)
			}
		}
		// Physical circuit holds program swaps + movement swaps.
		if total := res.Physical.Stats().Swaps; total != 3+res.Swaps {
			t.Fatalf("%s: physical swaps = %d, want 3 program + %d movement", r.Name(), total, res.Swaps)
		}
	}
}

func TestVerifyRejectsMislabeledMovement(t *testing.T) {
	// Dropping a movement annotation must break verification: the replay
	// then treats a displacement as computation.
	d := uniformDevice(topo.Linear(3), 0.04)
	prog := circuit.New("m", 2).CX(0, 1)
	res, err := AStar{Cost: CostHops, MAH: -1}.Route(d, prog, alloc.Mapping{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 {
		t.Fatal("setup: expected movement")
	}
	bad := &Result{Physical: res.Physical, Initial: res.Initial, Final: res.Final, Swaps: res.Swaps}
	if Verify(d, prog, bad) == nil {
		t.Fatal("verification passed with movement annotations dropped")
	}
}

func TestVerifyCatchesCorruptedCompilation(t *testing.T) {
	d := uniformDevice(topo.Linear(3), 0.05)
	c := circuit.New("v", 2).CX(0, 1)
	res, err := AStar{Cost: CostHops, MAH: -1}.Route(d, c, identity(2))
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: drop the CX.
	bad := &Result{Physical: circuit.New("v", 3), Initial: res.Initial, Final: res.Final}
	if Verify(d, c, bad) == nil {
		t.Fatal("verify accepted a circuit with missing gates")
	}
	// Tamper: CX on non-coupled qubits.
	bad2 := &Result{Physical: circuit.New("v", 3).CX(0, 2), Initial: res.Initial, Final: res.Final}
	if Verify(d, c, bad2) == nil {
		t.Fatal("verify accepted a CX across non-coupled qubits")
	}
}

func TestHeuristicZeroForAdjacentPairs(t *testing.T) {
	d := uniformDevice(topo.Linear(3), 0.05)
	cm := newCosts(d, CostReliability)
	cm.ensureAdj()
	if h := cm.heuristic(alloc.Mapping{0, 1}, [][2]int{{0, 1}}); h != 0 {
		t.Fatalf("heuristic for adjacent pair = %v, want 0", h)
	}
	if h := cm.heuristic(alloc.Mapping{0, 2}, [][2]int{{0, 1}}); h <= 0 {
		t.Fatalf("heuristic for distant pair = %v, want > 0", h)
	}
}

func TestAdjacencyMatrixSymmetricUnderSwap(t *testing.T) {
	d := uniformDevice(topo.IBMQ20(), 0.05)
	cm := newCosts(d, CostHops)
	cm.ensureAdj()
	for a := 0; a < 20; a++ {
		for b := 0; b < 20; b++ {
			if a == b {
				continue
			}
			if math.Abs(cm.adjCost[a][b]-cm.adjCost[b][a]) > 1e-9 {
				t.Fatalf("adjCost asymmetric at (%d,%d)", a, b)
			}
		}
	}
}
