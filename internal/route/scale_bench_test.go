package route

import (
	"fmt"
	"testing"
	"time"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/workloads"
)

// scaleDevice materializes the mid-variance heavy-hex fleet of size n.
func scaleDevice(b testing.TB, n int) *device.Device {
	b.Helper()
	arch, err := calib.ZooArchive(fmt.Sprintf("heavy-hex-%d-mid", n), 2019)
	if err != nil {
		b.Fatal(err)
	}
	return device.MustNew(arch.Topo, arch.MustMean())
}

// BenchmarkRouteScale is the headline scaling artifact: route workloads
// on heavy-hex devices from 20 to 1000 qubits. Two workload shapes:
//
//   - bv: a Bernstein–Vazirani program spanning half the machine — wide
//     and shallow, stresses placement spread.
//   - qft16: a fixed 16-qubit QFT scattered across the device — dense
//     layers of simultaneous CX pairs, the shape that blows up A*'s
//     joint search (seconds at 100 qubits, unbounded beyond).
//
// SABRE runs at every size; A* runs only to 100 qubits, where its
// O(n²·|E|) adjacency build and multi-pair search are still affordable.
// Cost tables are warmed outside the timer at each size, so the numbers
// compare search + emission, the steady state of a portfolio sweep.
func BenchmarkRouteScale(b *testing.B) {
	sizes := []int{20, 100, 399, 1000}
	workload := []struct {
		name string
		prog func(n int) *circuit.Circuit
	}{
		{"bv", func(n int) *circuit.Circuit { return workloads.BV(n / 2) }},
		{"qft16", func(int) *circuit.Circuit { return workloads.QFT(16) }},
	}
	routers := []struct {
		name string
		r    Router
		maxN int // largest device this router is benched at
	}{
		{"sabre", Sabre{Cost: CostReliability}, 1000},
		{"astar", AStar{Cost: CostReliability, MAH: -1}, 100},
	}
	for _, wl := range workload {
		for _, rt := range routers {
			for _, n := range sizes {
				if n > rt.maxN {
					continue
				}
				b.Run(fmt.Sprintf("%s/%s/hh%d", wl.name, rt.name, n), func(b *testing.B) {
					d := scaleDevice(b, n)
					c := wl.prog(n)
					init := permInit(int64(n))(d, c)
					if _, err := rt.r.Route(d, c, init); err != nil { // warm tables
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := rt.r.Route(d, c, init); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// TestSabre1000UnderOneSecond pins the acceptance bound directly: one
// SABRE route of a 500-qubit BV program on the 1000-qubit heavy-hex
// fleet completes in under a second (cost tables warm).
func TestSabre1000UnderOneSecond(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-qubit route skipped in -short")
	}
	d := scaleDevice(t, 1000)
	c := workloads.BV(500)
	init := permInit(1000)(d, c)
	r := Sabre{Cost: CostReliability}
	if _, err := r.Route(d, c, init); err != nil { // warm tables
		t.Fatal(err)
	}
	start := time.Now()
	res, err := r.Route(d, c, init)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Fatalf("1000-qubit SABRE route took %v, want < 1s", elapsed)
	}
	if err := Verify(d, c, res); err != nil {
		t.Fatal(err)
	}
	t.Logf("1000-qubit route: %v, %d swaps", elapsed, res.Swaps)
}
