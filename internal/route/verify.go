package route

import (
	"fmt"

	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/gate"
)

// Verify checks that a routing result is a faithful compilation of the
// logical circuit onto the device:
//
//  1. Every two-qubit gate in the physical circuit (including inserted
//     SWAPs) acts across a real coupling link.
//  2. Replaying the physical circuit while tracking qubit movement
//     recovers, for every program qubit, exactly the original per-qubit
//     operation sequence (kind, partner program qubit for two-qubit gates,
//     parameter, classical bit). Dependency layering may interleave
//     independent gates differently, but per-qubit order is an invariant
//     of correct compilation.
//  3. The recorded Final mapping matches the replayed movement.
func Verify(d *device.Device, logical *circuit.Circuit, res *Result) error {
	type op struct {
		kind    gate.Kind
		partner int // program-qubit partner for 2Q gates, -1 otherwise
		control bool
		param   float64
		cbit    int
	}
	perQubit := func(c *circuit.Circuit) ([][]op, error) {
		seq := make([][]op, logical.NumQubits)
		for _, g := range c.Gates {
			if g.Kind == gate.Barrier {
				continue
			}
			qs := g.Qubits
			if g.Kind.TwoQubit() {
				a, b := qs[0], qs[1]
				if a < 0 || b < 0 {
					return nil, fmt.Errorf("verify: 2Q gate on unoccupied physical qubit")
				}
				seq[a] = append(seq[a], op{kind: g.Kind, partner: b, control: true, param: g.Param, cbit: g.CBit})
				seq[b] = append(seq[b], op{kind: g.Kind, partner: a, control: false, param: g.Param, cbit: g.CBit})
			} else {
				q := qs[0]
				if q < 0 {
					return nil, fmt.Errorf("verify: 1Q gate on unoccupied physical qubit")
				}
				seq[q] = append(seq[q], op{kind: g.Kind, partner: -1, param: g.Param, cbit: g.CBit})
			}
		}
		return seq, nil
	}

	want, err := perQubit(logical)
	if err != nil {
		return err
	}

	// Replay the physical circuit, tracking the physical→program view.
	// SWAPs the router inserted (res.Movement) displace program qubits;
	// SWAPs belonging to the program itself are computation: they exchange
	// the labels' states in place, leaving the mapping untouched.
	progAt := res.Initial.Inverse(d.NumQubits())
	var got [][]op
	{
		seq := make([][]op, logical.NumQubits)
		for gi, g := range res.Physical.Gates {
			if g.Kind.TwoQubit() && !d.Topology().Adjacent(g.Qubits[0], g.Qubits[1]) {
				return fmt.Errorf("verify: %s uses non-coupled qubits %d,%d", g.Kind, g.Qubits[0], g.Qubits[1])
			}
			switch {
			case g.Kind == gate.SWAP && res.IsMovement(gi):
				a, b := g.Qubits[0], g.Qubits[1]
				progAt[a], progAt[b] = progAt[b], progAt[a]
			case g.Kind == gate.Barrier:
				// no-op
			default:
				if g.Kind.TwoQubit() {
					pa, pb := progAt[g.Qubits[0]], progAt[g.Qubits[1]]
					if pa < 0 || pb < 0 {
						return fmt.Errorf("verify: computation on unoccupied qubit")
					}
					seq[pa] = append(seq[pa], op{kind: g.Kind, partner: pb, control: true, param: g.Param, cbit: g.CBit})
					seq[pb] = append(seq[pb], op{kind: g.Kind, partner: pa, control: false, param: g.Param, cbit: g.CBit})
				} else {
					p := progAt[g.Qubits[0]]
					if p < 0 {
						return fmt.Errorf("verify: computation on unoccupied qubit %d", g.Qubits[0])
					}
					seq[p] = append(seq[p], op{kind: g.Kind, partner: -1, param: g.Param, cbit: g.CBit})
				}
			}
		}
		got = seq
	}

	for p := 0; p < logical.NumQubits; p++ {
		if len(want[p]) != len(got[p]) {
			return fmt.Errorf("verify: program qubit %d has %d ops, want %d", p, len(got[p]), len(want[p]))
		}
		for i := range want[p] {
			if want[p][i] != got[p][i] {
				return fmt.Errorf("verify: program qubit %d op %d = %+v, want %+v", p, i, got[p][i], want[p][i])
			}
		}
	}

	// Final mapping consistency.
	for p, phys := range res.Final {
		if progAt[phys] != p {
			return fmt.Errorf("verify: final mapping says qubit %d at %d, replay disagrees", p, phys)
		}
	}
	return nil
}
