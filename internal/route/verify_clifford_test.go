package route

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"vaq/internal/alloc"
	"vaq/internal/circuit"
	"vaq/internal/topo"
	"vaq/internal/workloads"
)

func TestVerifyCliffordAcceptsBVThroughEveryRouter(t *testing.T) {
	d := uniformDevice(topo.IBMQ20(), 0.05)
	prog := workloads.BV(10)
	init := alloc.Mapping{0, 4, 10, 14, 19, 15, 5, 9, 2, 12} // scattered on purpose
	for _, r := range []Router{
		AStar{Cost: CostHops, MAH: -1},
		AStar{Cost: CostReliability, MAH: -1},
		AStar{Cost: CostReliability, MAH: 4},
		Naive{},
	} {
		res, err := r.Route(d, prog, init)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if err := VerifyClifford(d, prog, res); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
	}
}

func TestVerifyCliffordRejectsNonClifford(t *testing.T) {
	d := uniformDevice(topo.IBMQ20(), 0.05)
	prog := workloads.QFT(4)
	res, err := AStar{Cost: CostHops, MAH: -1}.Route(d, prog, identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyClifford(d, prog, res); !errors.Is(err, ErrNotClifford) {
		t.Fatalf("err = %v, want ErrNotClifford", err)
	}
}

func TestVerifyCliffordCatchesWrongGate(t *testing.T) {
	d := uniformDevice(topo.Linear(3), 0.05)
	prog := circuit.New("c", 2).H(0).CX(0, 1)
	res, err := AStar{Cost: CostHops, MAH: -1}.Route(d, prog, identity(2))
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the physical circuit: extra X changes the state.
	bad := &Result{
		Physical: res.Physical.Clone().X(0),
		Initial:  res.Initial,
		Final:    res.Final,
	}
	if VerifyClifford(d, prog, bad) == nil {
		t.Fatal("tampered circuit passed quantum verification")
	}
}

func TestVerifyCliffordCatchesWrongControlDirection(t *testing.T) {
	// Subtle miscompilation the structural check may not model: reversing
	// a CX's direction. Build a result by hand with reversed operands.
	d := uniformDevice(topo.Linear(2), 0.05)
	prog := circuit.New("c", 2).H(0).CX(0, 1)
	good := circuit.New("c", 2).H(0).CX(0, 1)
	bad := circuit.New("c", 2).H(0).CX(1, 0)
	init := alloc.Mapping{0, 1}
	okRes := &Result{Physical: good, Initial: init, Final: init.Clone()}
	if err := VerifyClifford(d, prog, okRes); err != nil {
		t.Fatalf("faithful circuit rejected: %v", err)
	}
	badRes := &Result{Physical: bad, Initial: init, Final: init.Clone()}
	if VerifyClifford(d, prog, badRes) == nil {
		t.Fatal("reversed CX passed quantum verification")
	}
}

func TestVerifyCliffordRandomCliffordProgramsProperty(t *testing.T) {
	devices := []struct {
		tp *topo.Topology
	}{
		{topo.IBMQ20()}, {topo.IBMQ5()}, {topo.Ring5()},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := uniformDevice(devices[rng.Intn(len(devices))].tp, 0.04)
		n := 2 + rng.Intn(d.NumQubits()-1)
		c := circuit.New("cliff", n)
		for i := 0; i < 18; i++ {
			a := rng.Intn(n)
			switch rng.Intn(6) {
			case 0:
				c.H(a)
			case 1:
				c.S(a)
			case 2:
				c.X(a)
			case 3:
				c.Z(a)
			default:
				b := (a + 1 + rng.Intn(n-1)) % n
				if rng.Intn(2) == 0 {
					c.CX(a, b)
				} else {
					c.Swap(a, b)
				}
			}
		}
		c.MeasureAll()
		init := make(alloc.Mapping, n)
		copy(init, rng.Perm(d.NumQubits())[:n])
		routers := []Router{
			AStar{Cost: CostHops, MAH: -1},
			AStar{Cost: CostReliability, MAH: -1},
			Naive{},
		}
		r := routers[rng.Intn(len(routers))]
		res, err := r.Route(d, c, init)
		if err != nil {
			t.Logf("route: %v", err)
			return false
		}
		if err := VerifyClifford(d, c, res); err != nil {
			t.Logf("%s: %v", r.Name(), err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationSwapsRestoreMapping(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		k := 1 + rng.Intn(n)
		initial := make(alloc.Mapping, k)
		final := make(alloc.Mapping, k)
		copy(initial, rng.Perm(n)[:k])
		copy(final, rng.Perm(n)[:k])
		// Apply the transpositions to the final layout; every program
		// qubit must come back to its initial position.
		pos := make([]int, n)
		for i := range pos {
			pos[i] = -1
		}
		for p, phys := range final {
			pos[phys] = p
		}
		for _, sw := range permutationSwaps(initial, final, n) {
			pos[sw.U], pos[sw.V] = pos[sw.V], pos[sw.U]
		}
		for p, phys := range initial {
			if pos[phys] != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
