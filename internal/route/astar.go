package route

import (
	"container/heap"
	"math"

	"vaq/internal/alloc"
	"vaq/internal/device"
	"vaq/internal/graphx"
)

// costs caches the per-device matrices the search consults: pairwise
// movement costs under the chosen model, pairwise hop counts, and for each
// physical pair the cheapest cost (and minimum swaps) to make them
// adjacent.
type costs struct {
	model CostModel
	// edges of the coupling graph with their per-SWAP cost.
	edges []graphx.Edge
	// dist[a][b]: minimum summed SWAP cost to move a qubit from a to b.
	dist [][]float64
	// hops[a][b]: minimum number of SWAPs to move a qubit from a to b.
	hops [][]float64
	// adjCost[a][b]: lower-estimate cost to make qubits at a and b
	// adjacent (each may move): min over coupling (u,v) of
	// min(dist[a][u]+dist[b][v], dist[a][v]+dist[b][u]).
	adjCost [][]float64
	// adjHops[a][b]: same quantity under hop counting — the minimum swaps
	// needed to make a and b adjacent, used for the MAH budget.
	adjHops [][]float64
}

func newCosts(d *device.Device, model CostModel) *costs {
	n := d.NumQubits()
	swapGraph := graphx.New(n)
	overhead := d.SwapOverheadCost()
	for _, c := range d.Topology().Couplings {
		w := 1.0
		if model == CostReliability {
			// Gate-failure hazard of the SWAP plus the decoherence hazard
			// of the schedule time it adds; the latter regularizes against
			// long detours whose per-route reliability gain is marginal.
			w = d.SwapCost(c.A, c.B) + overhead
		}
		swapGraph.AddEdge(c.A, c.B, w)
	}
	cm := &costs{
		model: model,
		edges: swapGraph.Edges(),
		dist:  swapGraph.AllPairsDijkstra(),
		hops:  d.HopGraph().AllPairsHops(),
	}
	cm.adjCost = adjacencyMatrix(cm.edges, cm.dist, n)
	unitEdges := d.HopGraph().Edges()
	cm.adjHops = adjacencyMatrix(unitEdges, cm.hops, n)
	return cm
}

// adjacencyMatrix computes, for every physical pair (a,b), the cheapest
// way to place them across some coupling link when both may move.
func adjacencyMatrix(edges []graphx.Edge, dist [][]float64, n int) [][]float64 {
	adj := make([][]float64, n)
	for a := 0; a < n; a++ {
		adj[a] = make([]float64, n)
		for b := 0; b < n; b++ {
			if a == b {
				continue // never queried: a gate has distinct operands
			}
			best := math.Inf(1)
			for _, e := range edges {
				if c := dist[a][e.U] + dist[b][e.V]; c < best {
					best = c
				}
				if c := dist[a][e.V] + dist[b][e.U]; c < best {
					best = c
				}
			}
			adj[a][b] = best
		}
	}
	return adj
}

// heuristic sums the adjacency cost over the layer's unsatisfied pairs
// under mapping m.
func (cm *costs) heuristic(m alloc.Mapping, pairs [][2]int) float64 {
	h := 0.0
	for _, pr := range pairs {
		h += cm.adjCost[m[pr[0]]][m[pr[1]]]
	}
	return h
}

// minSwapsNeeded sums the minimum swaps to satisfy every pair — the base
// of the MAH budget.
func (cm *costs) minSwapsNeeded(m alloc.Mapping, pairs [][2]int) int {
	total := 0.0
	for _, pr := range pairs {
		total += cm.adjHops[m[pr[0]]][m[pr[1]]]
	}
	return int(total)
}

// searchState is one A* node: a full program→physical mapping.
type searchState struct {
	m      alloc.Mapping
	g      float64
	swaps  int
	parent *searchState
	move   physPair // swap that produced this state from parent
}

type searchItem struct {
	st  *searchState
	f   float64
	seq int // FIFO tie-break for determinism
}

type searchPQ []searchItem

func (q searchPQ) Len() int { return len(q) }
func (q searchPQ) Less(i, j int) bool {
	if q[i].f != q[j].f {
		return q[i].f < q[j].f
	}
	return q[i].seq < q[j].seq
}
func (q searchPQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *searchPQ) Push(x any)   { *q = append(*q, x.(searchItem)) }
func (q *searchPQ) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// searchSwaps finds a SWAP sequence that makes every pair in the layer
// adjacent simultaneously, minimizing the model's cost plus a decaying
// lookahead bias toward keeping future layers' partners (future/futureW)
// close. It never mutates m. ok is false when the search exhausted its
// expansion cap (or the MAH budget made the goal unreachable); the caller
// then routes gate by gate.
func (r AStar) searchSwaps(d *device.Device, cm *costs, m alloc.Mapping, pairs [][2]int, future [][2]int, futureW []float64, maxExp int) (plan []physPair, ok bool) {
	lookahead := func(mm alloc.Mapping) float64 {
		h := 0.0
		for i, pr := range future {
			h += futureW[i] * cm.adjCost[mm[pr[0]]][mm[pr[1]]]
		}
		return h
	}
	satisfied := func(mm alloc.Mapping) bool {
		for _, pr := range pairs {
			if !d.Topology().Adjacent(mm[pr[0]], mm[pr[1]]) {
				return false
			}
		}
		return true
	}
	if satisfied(m) {
		return nil, true
	}

	budget := math.MaxInt32
	if r.MAH >= 0 {
		budget = cm.minSwapsNeeded(m, pairs) + r.MAH
	}

	active := make(map[int]bool, 2*len(pairs))
	for _, pr := range pairs {
		active[pr[0]] = true
		active[pr[1]] = true
	}

	start := &searchState{m: m.Clone()}
	open := &searchPQ{{st: start, f: cm.heuristic(m, pairs) + lookahead(m)}}
	bestG := map[string]float64{stateKey(start.m): 0}
	seq := 0
	expansions := 0

	for open.Len() > 0 && expansions < maxExp {
		item := heap.Pop(open).(searchItem)
		st := item.st
		if g, ok := bestG[stateKey(st.m)]; ok && st.g > g {
			continue // stale entry
		}
		if satisfied(st.m) {
			return extractPlan(st), true
		}
		expansions++
		if st.swaps >= budget {
			continue
		}
		inv := st.m.Inverse(d.NumQubits())
		for _, e := range cm.edges {
			pu, pv := inv[e.U], inv[e.V]
			if pu == -1 && pv == -1 {
				continue
			}
			// Zulehner-style restriction: only move qubits the layer
			// cares about (or their blockers).
			if !(pu != -1 && active[pu]) && !(pv != -1 && active[pv]) {
				continue
			}
			next := st.m.Clone()
			if pu != -1 {
				next[pu] = e.V
			}
			if pv != -1 {
				next[pv] = e.U
			}
			g := st.g + e.W
			key := stateKey(next)
			if prev, ok := bestG[key]; ok && g >= prev {
				continue
			}
			bestG[key] = g
			ns := &searchState{m: next, g: g, swaps: st.swaps + 1, parent: st, move: physPair{e.U, e.V}}
			seq++
			heap.Push(open, searchItem{st: ns, f: g + cm.heuristic(next, pairs) + lookahead(next), seq: seq})
		}
	}
	return nil, false
}

func stateKey(m alloc.Mapping) string {
	b := make([]byte, len(m))
	for i, v := range m {
		b[i] = byte(v)
	}
	return string(b)
}

func extractPlan(st *searchState) []physPair {
	var rev []physPair
	for s := st; s.parent != nil; s = s.parent {
		rev = append(rev, s.move)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// pairPlan routes a single physical pair: it walks the qubit at src along
// the cheapest (optionally hop-limited) path toward dst and returns the
// swap sequence that makes them adjacent. Deterministic; always terminates
// on a connected machine.
func (r AStar) pairPlan(d *device.Device, cm *costs, src, dst int) []physPair {
	if d.Topology().Adjacent(src, dst) {
		return nil
	}
	costGraph := graphx.New(d.NumQubits())
	for _, e := range cm.edges {
		costGraph.AddEdge(e.U, e.V, e.W)
	}
	var path []int
	if r.MAH >= 0 {
		maxHops := int(cm.hops[src][dst]) + r.MAH
		_, paths := costGraph.ConstrainedDijkstra(src, maxHops)
		path = paths[dst]
	}
	if path == nil {
		path, _, _ = costGraph.ShortestPath(src, dst)
	}
	var plan []physPair
	for i := 0; i+2 < len(path); i++ {
		plan = append(plan, physPair{path[i], path[i+1]})
	}
	return plan
}
