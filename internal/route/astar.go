package route

import (
	"math"
	"math/bits"
	"sync"

	"vaq/internal/alloc"
	"vaq/internal/device"
	"vaq/internal/graphx"
)

// costs caches the per-device matrices the search consults: pairwise
// movement costs under the chosen model, pairwise hop counts, and for each
// physical pair the cheapest cost (and minimum swaps) to make them
// adjacent. A built costs value is immutable and shared across concurrent
// Route calls via the fingerprint-keyed cache in cache.go.
type costs struct {
	model CostModel
	n     int // physical qubits
	// edges of the coupling graph with their per-SWAP cost, ordered by
	// (U, V) — the A* neighbor-expansion order, so it is part of the
	// determinism contract.
	edges []graphx.Edge
	// graph is the Dijkstra-ready swap-cost graph (same weights as edges);
	// pairPlan's greedy fallback runs its path searches on it directly
	// instead of rebuilding a graph from edges on every call.
	graph *graphx.Graph
	// dist[a][b]: minimum summed SWAP cost to move a qubit from a to b.
	dist [][]float64
	// hops[a][b]: minimum number of SWAPs to move a qubit from a to b.
	hops [][]float64
	// adjCost[a][b]: lower-estimate cost to make qubits at a and b
	// adjacent (each may move): min over coupling (u,v) of
	// min(dist[a][u]+dist[b][v], dist[a][v]+dist[b][u]).
	//
	// adjCost and adjHops are built lazily by ensureAdj: they cost
	// O(n²·|E|) — minutes of CPU at 1000 qubits — and only the A*
	// heuristic consults them. Sabre routes off dist/hops/coupled alone,
	// so large-device SABRE runs never pay for them.
	adjCost [][]float64
	// adjHops[a][b]: same quantity under hop counting — the minimum swaps
	// needed to make a and b adjacent, used for the MAH budget.
	adjHops [][]float64
	// adjOnce guards the lazy adjCost/adjHops build; hopEdges is retained
	// from construction for it.
	adjOnce  sync.Once
	hopEdges []graphx.Edge
	// coupled is the flat n×n coupling-adjacency table; the satisfied()
	// goal test consults it instead of scanning the topology's coupling
	// list per query.
	coupled []bool
}

func newCosts(d *device.Device, model CostModel) *costs {
	n := d.NumQubits()
	swapGraph := graphx.New(n)
	overhead := d.SwapOverheadCost()
	for _, c := range d.Topology().Couplings {
		w := 1.0
		if model == CostReliability {
			// Gate-failure hazard of the SWAP plus the decoherence hazard
			// of the schedule time it adds; the latter regularizes against
			// long detours whose per-route reliability gain is marginal.
			w = d.SwapCost(c.A, c.B) + overhead
		}
		swapGraph.AddEdge(c.A, c.B, w)
	}
	hopGraph := d.HopGraph()
	cm := &costs{
		model:    model,
		n:        n,
		edges:    swapGraph.Edges(),
		graph:    swapGraph,
		dist:     swapGraph.CSR().AllPairsDijkstra(),
		hops:     hopGraph.CSR().AllPairsHops(),
		hopEdges: hopGraph.Edges(),
	}
	cm.coupled = make([]bool, n*n)
	for _, c := range d.Topology().Couplings {
		cm.coupled[c.A*n+c.B] = true
		cm.coupled[c.B*n+c.A] = true
	}
	return cm
}

// ensureAdj builds the adjacency-cost matrices on first use. The cached
// *costs value stays effectively immutable: the build runs under a
// sync.Once, and after it the matrices are never written again, so
// concurrent readers are race-free exactly as before.
func (cm *costs) ensureAdj() {
	cm.adjOnce.Do(func() {
		cm.adjCost = adjacencyMatrix(cm.edges, cm.dist, cm.n)
		cm.adjHops = adjacencyMatrix(cm.hopEdges, cm.hops, cm.n)
	})
}

// adjacencyMatrix computes, for every physical pair (a,b), the cheapest
// way to place them across some coupling link when both may move. The
// rows share one flat backing array.
func adjacencyMatrix(edges []graphx.Edge, dist [][]float64, n int) [][]float64 {
	adj := make([][]float64, n)
	flat := make([]float64, n*n)
	for a := 0; a < n; a++ {
		adj[a] = flat[a*n : (a+1)*n]
		for b := 0; b < n; b++ {
			if a == b {
				continue // never queried: a gate has distinct operands
			}
			best := math.Inf(1)
			for _, e := range edges {
				if c := dist[a][e.U] + dist[b][e.V]; c < best {
					best = c
				}
				if c := dist[a][e.V] + dist[b][e.U]; c < best {
					best = c
				}
			}
			adj[a][b] = best
		}
	}
	return adj
}

// heuristic sums the adjacency cost over the layer's unsatisfied pairs
// under mapping m.
func (cm *costs) heuristic(m []int, pairs [][2]int) float64 {
	h := 0.0
	for _, pr := range pairs {
		h += cm.adjCost[m[pr[0]]][m[pr[1]]]
	}
	return h
}

// lookahead is the decaying bias toward keeping future layers' CNOT
// partners close (Zulehner et al.'s scheme).
func (cm *costs) lookahead(m []int, future [][2]int, futureW []float64) float64 {
	h := 0.0
	for i, pr := range future {
		h += futureW[i] * cm.adjCost[m[pr[0]]][m[pr[1]]]
	}
	return h
}

// satisfied reports whether every pair is mapped onto a coupling link.
func (cm *costs) satisfied(m []int, pairs [][2]int) bool {
	for _, pr := range pairs {
		if !cm.coupled[m[pr[0]]*cm.n+m[pr[1]]] {
			return false
		}
	}
	return true
}

// minSwapsNeeded sums the minimum swaps to satisfy every pair — the base
// of the MAH budget.
func (cm *costs) minSwapsNeeded(m []int, pairs [][2]int) int {
	total := 0.0
	for _, pr := range pairs {
		total += cm.adjHops[m[pr[0]]][m[pr[1]]]
	}
	return int(total)
}

// packedKey is a fixed-width encoding of a full program→physical mapping:
// each entry takes bitsFor(numPhysical) bits, entries never straddle word
// boundaries. Unlike the string key it replaces it is width-safe for
// devices with more than 255 physical qubits, comparable (a map key), and
// derived from the parent state's key in O(1) without materializing the
// child mapping.
type packedKey [4]uint64

// packer describes the encoding for one search: b bits per entry, epw
// entries per 64-bit word. fits reports whether the mapping length fits
// in a packedKey; when it does not (≳ 28 program qubits on a >255-qubit
// machine), the search falls back to width-safe string keys.
type packer struct {
	b, epw uint32
	fits   bool
}

func newPacker(numProgram, numPhysical int) packer {
	b := uint32(bits.Len(uint(numPhysical - 1)))
	if b == 0 {
		b = 1
	}
	epw := 64 / b
	return packer{b: b, epw: epw, fits: uint32(numProgram) <= 4*epw}
}

// set overwrites entry i of the key with value v.
func (p packer) set(key *packedKey, i, v int) {
	w := uint32(i) / p.epw
	sh := (uint32(i) % p.epw) * p.b
	mask := (uint64(1)<<p.b - 1) << sh
	key[w] = key[w]&^mask | uint64(v)<<sh
}

// pack encodes the whole mapping.
func (p packer) pack(m []int) packedKey {
	var key packedKey
	for i, v := range m {
		p.set(&key, i, v)
	}
	return key
}

// stateRec is one A* node. The mapping and its inverse live in the
// scratch slabs (stride k and n respectively) at this record's index, so
// generating a state performs no heap allocation.
type stateRec struct {
	g      float64
	key    packedKey // packed mapping (packer path)
	skey   string    // width-safe string key (fallback path only)
	swaps  int32
	parent int32 // slab index; -1 for the root
	move   physPair
}

// openItem is an entry of the open list: f-score with a FIFO sequence
// tie-break for determinism, pointing at a slab state.
type openItem struct {
	f   float64
	seq int32
	si  int32
}

func openLess(a, b openItem) bool {
	if a.f != b.f {
		return a.f < b.f
	}
	return a.seq < b.seq
}

// searchScratch holds every buffer one Route call needs: the state slab,
// the open heap, the best-g table, and the per-layer pair lists. It is
// pooled across Route calls, so a warmed-up compile loop allocates
// (almost) nothing per circuit.
type searchScratch struct {
	k, n int // program qubits, physical qubits
	pk   packer
	strW int // bytes per entry of the fallback string key

	maps   []int // state mappings, stride k
	invs   []int // state inverses (physical→program, -1 empty), stride n
	states []stateRec
	open   []openItem
	bestG  map[packedKey]float64
	bestGS map[string]float64
	active []bool // per program qubit: does this layer move it?
	keyBuf []byte
	plan   []physPair

	// Per-circuit layer pair lists: pairsBuf holds every layer's
	// two-qubit pairs back to back; layer li owns
	// pairsBuf[layerOff[li]:layerOff[li+1]].
	pairsBuf [][2]int
	layerOff []int
	future   [][2]int
	futureW  []float64
}

var scratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// setup sizes the scratch for one Route call.
func (sc *searchScratch) setup(numProgram, numPhysical int) {
	sc.k, sc.n = numProgram, numPhysical
	sc.pk = newPacker(numProgram, numPhysical)
	sc.strW = 2
	if numPhysical > 1<<16 {
		sc.strW = 4
	}
	if cap(sc.active) < numProgram {
		sc.active = make([]bool, numProgram)
	}
	sc.active = sc.active[:numProgram]
	if sc.bestG == nil {
		sc.bestG = make(map[packedKey]float64, 256)
	}
	if !sc.pk.fits && sc.bestGS == nil {
		sc.bestGS = make(map[string]float64, 256)
	}
}

// resetSearch clears per-layer state while keeping every capacity.
func (sc *searchScratch) resetSearch() {
	sc.maps = sc.maps[:0]
	sc.invs = sc.invs[:0]
	sc.states = sc.states[:0]
	sc.open = sc.open[:0]
	clear(sc.bestG)
	if sc.bestGS != nil {
		clear(sc.bestGS)
	}
	for i := range sc.active {
		sc.active[i] = false
	}
}

func (sc *searchScratch) mapAt(si int32) []int { return sc.maps[int(si)*sc.k : (int(si)+1)*sc.k] }
func (sc *searchScratch) invAt(si int32) []int { return sc.invs[int(si)*sc.n : (int(si)+1)*sc.n] }

// addState appends a zeroed state and its (uninitialized) map/inverse
// slab rows, returning its index.
func (sc *searchScratch) addState() int32 {
	si := int32(len(sc.states))
	sc.states = append(sc.states, stateRec{})
	sc.maps = growInts(sc.maps, sc.k)
	sc.invs = growInts(sc.invs, sc.n)
	return si
}

// dropLast rolls back the most recent addState (fallback path: the child
// was materialized to compute its key, then rejected by the best-g table).
func (sc *searchScratch) dropLast() {
	sc.states = sc.states[:len(sc.states)-1]
	sc.maps = sc.maps[:len(sc.maps)-sc.k]
	sc.invs = sc.invs[:len(sc.invs)-sc.n]
}

// reserve pre-grows the slabs so the next `extra` addState calls cannot
// reallocate — required because the expansion loop holds slices into the
// slabs while appending children.
func (sc *searchScratch) reserve(extra int) {
	if need := len(sc.states) + extra; need > cap(sc.states) {
		ns := make([]stateRec, len(sc.states), grownCap(cap(sc.states), need))
		copy(ns, sc.states)
		sc.states = ns
	}
	sc.maps = reserveInts(sc.maps, extra*sc.k)
	sc.invs = reserveInts(sc.invs, extra*sc.n)
}

// child materializes the state reached from parent by swapping across
// edge e: both the mapping and its inverse are copied from the parent and
// patched in place.
func (sc *searchScratch) child(parent int32, pu, pv int, e graphx.Edge) int32 {
	ci := sc.addState()
	m := sc.mapAt(ci)
	copy(m, sc.mapAt(parent))
	inv := sc.invAt(ci)
	copy(inv, sc.invAt(parent))
	if pu != -1 {
		m[pu] = e.V
	}
	if pv != -1 {
		m[pv] = e.U
	}
	inv[e.U], inv[e.V] = pv, pu
	return ci
}

// stringKey is the width-safe fallback encoding for mappings too long for
// a packedKey: strW little-endian bytes per entry.
func (sc *searchScratch) stringKey(m []int) string {
	need := len(m) * sc.strW
	if cap(sc.keyBuf) < need {
		sc.keyBuf = make([]byte, need)
	}
	b := sc.keyBuf[:need]
	for i, v := range m {
		for j := 0; j < sc.strW; j++ {
			b[i*sc.strW+j] = byte(v >> (8 * j))
		}
	}
	return string(b)
}

// pushOpen and popOpen implement the open list as a binary heap ordered
// by (f, seq) — a strict total order, so the pop sequence is identical to
// the container/heap implementation it replaces, without the per-pop
// interface boxing.
func (sc *searchScratch) pushOpen(it openItem) {
	h := append(sc.open, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !openLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	sc.open = h
}

func (sc *searchScratch) popOpen() openItem {
	h := sc.open
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && openLess(h[l], h[s]) {
			s = l
		}
		if r < n && openLess(h[r], h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	sc.open = h
	return top
}

// buildLayerPairs extracts every layer's two-qubit pairs into the shared
// pairs buffer, so the per-layer loop (and its lookahead window) reads
// slices instead of re-scanning gate lists.
func (sc *searchScratch) buildLayerPairs(gates func(li int) [][2]int, numLayers int) {
	sc.pairsBuf = sc.pairsBuf[:0]
	sc.layerOff = sc.layerOff[:0]
	sc.layerOff = append(sc.layerOff, 0)
	for li := 0; li < numLayers; li++ {
		sc.pairsBuf = append(sc.pairsBuf, gates(li)...)
		sc.layerOff = append(sc.layerOff, len(sc.pairsBuf))
	}
}

func (sc *searchScratch) layerPairsAt(li int) [][2]int {
	return sc.pairsBuf[sc.layerOff[li]:sc.layerOff[li+1]]
}

// growInts extends s by `by` elements (contents unspecified).
func growInts(s []int, by int) []int {
	if need := len(s) + by; need > cap(s) {
		ns := make([]int, len(s), grownCap(cap(s), need))
		copy(ns, s)
		s = ns
	}
	return s[:len(s)+by]
}

// reserveInts grows capacity without changing length.
func reserveInts(s []int, by int) []int {
	if need := len(s) + by; need > cap(s) {
		ns := make([]int, len(s), grownCap(cap(s), need))
		copy(ns, s)
		return ns
	}
	return s
}

func grownCap(cur, need int) int {
	if c := 2 * cur; c > need {
		return c
	}
	return need
}

// searchSwaps finds a SWAP sequence that makes every pair in the layer
// adjacent simultaneously, minimizing the model's cost plus a decaying
// lookahead bias toward keeping future layers' partners (future/futureW)
// close. It never mutates m. ok is false when the search exhausted its
// expansion cap (or the MAH budget made the goal unreachable); the caller
// then routes gate by gate. The returned plan aliases scratch memory and
// is valid until the next search on the same scratch.
func (r AStar) searchSwaps(cm *costs, sc *searchScratch, m alloc.Mapping, pairs [][2]int, future [][2]int, futureW []float64, maxExp int) (plan []physPair, ok bool) {
	if cm.satisfied(m, pairs) {
		return nil, true
	}

	budget := math.MaxInt32
	if r.MAH >= 0 {
		budget = cm.minSwapsNeeded(m, pairs) + r.MAH
	}

	sc.resetSearch()
	for _, pr := range pairs {
		sc.active[pr[0]] = true
		sc.active[pr[1]] = true
	}

	start := sc.addState()
	sm := sc.mapAt(start)
	copy(sm, m)
	m.InverseInto(sc.invAt(start))
	root := &sc.states[start]
	root.parent = -1
	if sc.pk.fits {
		root.key = sc.pk.pack(sm)
		sc.bestG[root.key] = 0
	} else {
		root.skey = sc.stringKey(sm)
		sc.bestGS[root.skey] = 0
	}
	sc.pushOpen(openItem{f: cm.heuristic(sm, pairs) + cm.lookahead(sm, future, futureW), seq: 0, si: start})
	seq := int32(0)
	expansions := 0

	for len(sc.open) > 0 && expansions < maxExp {
		it := sc.popOpen()
		// Growing the slabs mid-expansion would invalidate the slices
		// taken below, so guarantee room for a full fan-out up front.
		sc.reserve(len(cm.edges))
		st := sc.states[it.si]
		if sc.pk.fits {
			if g, seen := sc.bestG[st.key]; seen && st.g > g {
				continue // stale entry
			}
		} else {
			if g, seen := sc.bestGS[st.skey]; seen && st.g > g {
				continue
			}
		}
		stMap := sc.mapAt(it.si)
		if cm.satisfied(stMap, pairs) {
			return sc.extractPlan(it.si), true
		}
		expansions++
		if int(st.swaps) >= budget {
			continue
		}
		inv := sc.invAt(it.si)
		for _, e := range cm.edges {
			pu, pv := inv[e.U], inv[e.V]
			if pu == -1 && pv == -1 {
				continue
			}
			// Zulehner-style restriction: only move qubits the layer
			// cares about (or their blockers).
			if !(pu != -1 && sc.active[pu]) && !(pv != -1 && sc.active[pv]) {
				continue
			}
			g := st.g + e.W
			var ci int32
			if sc.pk.fits {
				// Derive the child key from the parent's without
				// materializing the child mapping; most children die here.
				ck := st.key
				if pu != -1 {
					sc.pk.set(&ck, pu, e.V)
				}
				if pv != -1 {
					sc.pk.set(&ck, pv, e.U)
				}
				if prev, seen := sc.bestG[ck]; seen && g >= prev {
					continue
				}
				sc.bestG[ck] = g
				ci = sc.child(it.si, pu, pv, e)
				sc.states[ci].key = ck
			} else {
				ci = sc.child(it.si, pu, pv, e)
				ck := sc.stringKey(sc.mapAt(ci))
				if prev, seen := sc.bestGS[ck]; seen && g >= prev {
					sc.dropLast()
					continue
				}
				sc.bestGS[ck] = g
				sc.states[ci].skey = ck
			}
			cs := &sc.states[ci]
			cs.g = g
			cs.swaps = st.swaps + 1
			cs.parent = it.si
			cs.move = physPair{e.U, e.V}
			childMap := sc.mapAt(ci)
			seq++
			sc.pushOpen(openItem{
				f:   g + cm.heuristic(childMap, pairs) + cm.lookahead(childMap, future, futureW),
				seq: seq,
				si:  ci,
			})
		}
	}
	return nil, false
}

// extractPlan walks the parent chain into the scratch plan buffer and
// reverses it into execution order.
func (sc *searchScratch) extractPlan(si int32) []physPair {
	sc.plan = sc.plan[:0]
	for s := si; sc.states[s].parent != -1; s = sc.states[s].parent {
		sc.plan = append(sc.plan, sc.states[s].move)
	}
	for i, j := 0, len(sc.plan)-1; i < j; i, j = i+1, j-1 {
		sc.plan[i], sc.plan[j] = sc.plan[j], sc.plan[i]
	}
	return sc.plan
}

// pairPlan routes a single physical pair: it walks the qubit at src along
// the cheapest (optionally hop-limited) path toward dst and returns the
// swap sequence that makes them adjacent. Deterministic; always terminates
// on a connected machine.
func (r AStar) pairPlan(cm *costs, src, dst int) []physPair {
	if cm.coupled[src*cm.n+dst] {
		return nil
	}
	var path []int
	if r.MAH >= 0 {
		maxHops := int(cm.hops[src][dst]) + r.MAH
		_, paths := cm.graph.ConstrainedDijkstra(src, maxHops)
		path = paths[dst]
	}
	if path == nil {
		path, _, _ = cm.graph.ShortestPath(src, dst)
	}
	var plan []physPair
	for i := 0; i+2 < len(path); i++ {
		plan = append(plan, physPair{path[i], path[i+1]})
	}
	return plan
}
