package route

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"testing"

	"vaq/internal/alloc"
	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/topo"
	"vaq/internal/workloads"
)

// resultHash serializes every observable field of a routed Result into a
// 64-bit FNV-1a hash: the physical gate stream (kind, operands, parameter,
// classical bit), both mappings, the swap count, and the movement indices.
// Two Results hash equal iff they are bit-identical for every consumer in
// the repository.
func resultHash(res *Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "n=%d cb=%d\n", res.Physical.NumQubits, res.Physical.NumCBits)
	for _, g := range res.Physical.Gates {
		fmt.Fprintf(h, "g %d %v %v %d\n", g.Kind, g.Qubits, g.Param, g.CBit)
	}
	fmt.Fprintf(h, "i %v\nf %v\ns %d\nm %v\n", res.Initial, res.Final, res.Swaps, res.Movement)
	return h.Sum64()
}

// goldenCase is one (device, circuit, mapping, router) combination whose
// routed output is pinned. The expected hashes were captured from the
// pre-packed-state implementation (PR 1), so this suite is the regression
// gate for "the zero-alloc rewrite changed no output bit".
type goldenCase struct {
	name   string
	device func() *device.Device
	prog   func() *circuit.Circuit
	init   func(d *device.Device, c *circuit.Circuit) alloc.Mapping
	router Router
	want   uint64
}

func goldenQ20() *device.Device {
	arch := calib.Generate(calib.DefaultQ20Config(2019))
	return device.MustNew(arch.Topo, arch.MustMean())
}

func goldenQ5() *device.Device {
	return uniformDevice(topo.IBMQ5(), 0.04)
}

func goldenHH399() *device.Device {
	arch, err := calib.ZooArchive("heavy-hex-399-mid", 2019)
	if err != nil {
		panic(err)
	}
	return device.MustNew(arch.Topo, arch.MustMean())
}

func identityInit(d *device.Device, c *circuit.Circuit) alloc.Mapping {
	return identity(c.NumQubits)
}

func permInit(seed int64) func(d *device.Device, c *circuit.Circuit) alloc.Mapping {
	return func(d *device.Device, c *circuit.Circuit) alloc.Mapping {
		rng := rand.New(rand.NewSource(seed))
		m := make(alloc.Mapping, c.NumQubits)
		copy(m, rng.Perm(d.NumQubits())[:c.NumQubits])
		return m
	}
}

func goldenRandomCircuit(n, gates int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New("rand", n)
	for i := 0; i < gates; i++ {
		a := rng.Intn(n)
		switch rng.Intn(4) {
		case 0:
			c.H(a)
		case 1:
			c.RZ(rng.Float64(), a)
		default:
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		}
	}
	return c.MeasureAll()
}

func goldenCases() []goldenCase {
	hops := AStar{Cost: CostHops, MAH: -1}
	rel := AStar{Cost: CostReliability, MAH: -1}
	mah4 := AStar{Cost: CostReliability, MAH: 4}
	return []goldenCase{
		{"q20/bv16/hops", goldenQ20, func() *circuit.Circuit { return workloads.BV(16) }, identityInit, hops, 0x8974ee7d7da4d1b4},
		{"q20/bv16/reliability", goldenQ20, func() *circuit.Circuit { return workloads.BV(16) }, identityInit, rel, 0x0c26f74dbc0733aa},
		{"q20/bv16/mah4", goldenQ20, func() *circuit.Circuit { return workloads.BV(16) }, identityInit, mah4, 0x0c26f74dbc0733aa},
		{"q20/qft8/hops", goldenQ20, func() *circuit.Circuit { return workloads.QFT(8) }, permInit(7), hops, 0x166a87dd50b870d6},
		{"q20/qft8/reliability", goldenQ20, func() *circuit.Circuit { return workloads.QFT(8) }, permInit(7), rel, 0x847f2227429ac323},
		{"q20/qft8/mah4", goldenQ20, func() *circuit.Circuit { return workloads.QFT(8) }, permInit(7), mah4, 0x847f2227429ac323},
		{"q20/rand12/reliability", goldenQ20, func() *circuit.Circuit { return goldenRandomCircuit(12, 40, 11) }, permInit(3), rel, 0x527ab2498035a25e},
		{"q20/rand12/naive", goldenQ20, func() *circuit.Circuit { return goldenRandomCircuit(12, 40, 11) }, permInit(3), Naive{}, 0xfd8cd1abc6843082},
		{"ring5/rand4/hops", ring5Fig1, func() *circuit.Circuit { return goldenRandomCircuit(4, 20, 5) }, permInit(9), hops, 0x8066bc2c8eff2838},
		{"ring5/rand4/reliability", ring5Fig1, func() *circuit.Circuit { return goldenRandomCircuit(4, 20, 5) }, permInit(9), rel, 0x12bff4dc39499aa4},
		{"q5/bv4/reliability", goldenQ5, func() *circuit.Circuit { return workloads.BV(4) }, permInit(2), rel, 0xd6fdf65a50e1da2c},
		{"q5/triswap/mah4", goldenQ5, func() *circuit.Circuit {
			return circuit.New("triswap", 3).X(0).Swap(0, 1).Swap(1, 2).Swap(0, 1).MeasureAll()
		}, permInit(4), mah4, 0xcaff12d33c513115},
		// SABRE cases, pinned when the heuristic router landed. The A*
		// hashes above must never move because of these.
		{"q20/bv16/sabre-hops", goldenQ20, func() *circuit.Circuit { return workloads.BV(16) }, identityInit, Sabre{Cost: CostHops}, 0x981b4780a352ccbb},
		{"q20/bv16/sabre-rel", goldenQ20, func() *circuit.Circuit { return workloads.BV(16) }, identityInit, Sabre{Cost: CostReliability}, 0x5c9813711b042134},
		{"q20/qft8/sabre-rel", goldenQ20, func() *circuit.Circuit { return workloads.QFT(8) }, permInit(7), Sabre{Cost: CostReliability}, 0x5228e65ad7b4c315},
		{"q20/rand12/sabre-rel", goldenQ20, func() *circuit.Circuit { return goldenRandomCircuit(12, 40, 11) }, permInit(3), Sabre{Cost: CostReliability}, 0xd8a9387e4196d085},
		{"ring5/rand4/sabre-hops", ring5Fig1, func() *circuit.Circuit { return goldenRandomCircuit(4, 20, 5) }, permInit(9), Sabre{Cost: CostHops}, 0xbf9ec707a545d8a9},
		{"hh399/bv40/sabre-hops", goldenHH399, func() *circuit.Circuit { return workloads.BV(40) }, permInit(13), Sabre{Cost: CostHops}, 0x107e44b4ef80f477},
		{"hh399/bv40/sabre-rel", goldenHH399, func() *circuit.Circuit { return workloads.BV(40) }, permInit(13), Sabre{Cost: CostReliability}, 0xe64414e2ec6c755a},
	}
}

// TestGoldenRoutingDeterminism pins the routed output of every golden case
// to the hash captured before the zero-alloc rewrite, on both a cold and a
// warm cost cache. Set GOLDEN_PRINT=1 to print current hashes (for
// regenerating the table after an intentional output change).
func TestGoldenRoutingDeterminism(t *testing.T) {
	print := os.Getenv("GOLDEN_PRINT") == "1"
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.device()
			c := tc.prog()
			init := tc.init(d, c)
			res, err := tc.router.Route(d, c, init)
			if err != nil {
				t.Fatal(err)
			}
			got := resultHash(res)
			if print {
				fmt.Printf("golden %-28s 0x%016x\n", tc.name, got)
				return
			}
			if got != tc.want {
				t.Fatalf("routed output changed: hash 0x%016x, golden 0x%016x", got, tc.want)
			}
			// Routing again (warm cost cache) must reproduce the same bytes.
			res2, err := tc.router.Route(d, c, init)
			if err != nil {
				t.Fatal(err)
			}
			if again := resultHash(res2); again != got {
				t.Fatalf("warm-cache rerun diverged: 0x%016x vs 0x%016x", again, got)
			}
			if err := Verify(d, c, res); err != nil {
				t.Fatal(err)
			}
		})
	}
}
