package route

import (
	"fmt"
	"sort"
	"strings"

	"vaq/internal/alloc"
	"vaq/internal/circuit"
	"vaq/internal/device"
)

// Sabre is a SABRE-style heuristic router (Li, Ding & Xie; hardware-
// aware variant per Niu et al.): instead of A*'s per-layer search over
// mapping states — combinatorial in the worst case — it repeatedly
// scores every candidate SWAP against the front layer of unroutable
// gates plus a decaying extended-lookahead window, and greedily applies
// the best one. Per decision the cost is O(|E|·(|F|+|X|)), so routing
// stays near-linear in circuit size and device size, which is what
// makes 1000-qubit machines reachable (see BenchmarkRouteScale).
//
// Determinism contract (shared with AStar): candidate SWAPs are scanned
// in cm.edges order — sorted by (U, V) at construction — and a strictly
// better score is required to displace the incumbent, so ties resolve
// to the lowest-ordered edge. The executable-gate scan walks a sorted
// ready list. No map is ever iterated. Identical inputs therefore
// produce byte-identical routed circuits on any GOMAXPROCS, pinned by
// the golden hashes in golden_test.go.
type Sabre struct {
	// Cost selects the distance table the scoring sums: CostHops counts
	// SWAPs (the variation-unaware heuristic), CostReliability sums
	// −log-success SWAP costs, making the router prefer detours over
	// weak links — the variation-aware movement policy at scale.
	Cost CostModel
}

// Scoring and decay parameters, following the SABRE paper's published
// constants: the extended set holds up to 20 downstream two-qubit
// gates at weight 0.5; each applied SWAP bumps its qubits' decay factor
// by 0.001 to spread movement across the device; the decay map resets
// whenever a gate retires.
const (
	sabreExtendedSize   = 20
	sabreExtendedWeight = 0.5
	sabreDecayStep      = 0.001
)

func (r Sabre) Name() string {
	if r.Cost == CostHops {
		return "sabre-hops"
	}
	return "sabre-reliability"
}

// sabreState carries the per-Route working set.
type sabreState struct {
	cm  *costs
	c   *circuit.Circuit
	m   alloc.Mapping // program → physical
	inv []int         // physical → program, -1 empty

	succs  [][]int // dependency DAG: gate → later gates it enables
	indeg  []int   // unretired predecessor count per gate
	ready  []int   // unretired gates with indeg 0, ascending
	remain int     // unretired gate count

	decay   []float64 // per physical qubit
	front   [][2]int  // physical endpoint pairs of blocked front gates
	extend  [][2]int  // physical endpoint pairs of the extended set
	active  []bool    // per physical qubit: endpoint of a front gate
	visited []int     // BFS stamp per gate
	stamp   int
	queue   []int
}

// Route compiles c onto d starting from initial. The cost tables come
// from the same fingerprint-keyed cache as AStar's, but the adjacency
// matrices stay unbuilt: SABRE only reads dist, hops and coupled.
func (r Sabre) Route(d *device.Device, c *circuit.Circuit, initial alloc.Mapping) (*Result, error) {
	if err := prepare(d, c, initial); err != nil {
		return nil, err
	}
	cm := cachedCosts(d, r.Cost)
	n := d.NumQubits()

	out := circuit.New(c.Name, n)
	out.NumCBits = c.NumCBits
	var ops opSlab
	var movement []int
	swaps := 0

	st := &sabreState{cm: cm, c: c, m: initial.Clone()}
	st.inv = make([]int, n)
	st.m.InverseInto(st.inv)
	st.buildDeps()
	st.decay = make([]float64, n)
	st.active = make([]bool, n)
	st.visited = make([]int, len(c.Gates))
	st.resetDecay()

	// A stall this long means the heuristic is cycling (possible on
	// pathological topologies); the greedy path fallback then guarantees
	// progress, exactly like A*'s expansion-cap fallback.
	stallLimit := 2*n + 16
	stall := 0

	emit := func(sw physPair) {
		emitSwap(out, st.m, sw, &ops)
		st.inv[sw.U], st.inv[sw.V] = st.inv[sw.V], st.inv[sw.U]
		swaps++
		movement = append(movement, len(out.Gates)-1)
	}

	for st.remain > 0 {
		if st.executeReady(out, &ops) {
			st.resetDecay()
			stall = 0
			continue
		}
		if st.remain == 0 {
			break
		}
		st.collectFront()
		if stall >= stallLimit {
			// Deterministic escape hatch: walk the first front gate's
			// control toward its target along the cheapest path.
			f := st.front[0]
			path, _, ok := cm.graph.ShortestPath(f[0], f[1])
			if !ok {
				return nil, fmt.Errorf("route: no path %d→%d", f[0], f[1])
			}
			for i := 0; i+2 < len(path); i++ {
				emit(physPair{path[i], path[i+1]})
			}
			st.resetDecay()
			stall = 0
			continue
		}
		st.collectExtended()
		sw, ok := st.bestSwap()
		if !ok {
			// No candidate touches a front qubit — cannot happen on a
			// connected device, but fail loudly rather than spin.
			return nil, fmt.Errorf("route: sabre found no candidate swap on %q", d.Topology().Name)
		}
		emit(sw)
		st.decay[sw.U] += sabreDecayStep
		st.decay[sw.V] += sabreDecayStep
		stall++
	}
	return &Result{Physical: out, Initial: initial.Clone(), Final: st.m, Swaps: swaps, Movement: movement}, nil
}

// buildDeps constructs the gate dependency DAG: gate gi depends on the
// previous gate touching each of its qubits. Successor lists are built
// in ascending gate order, and the initial ready list is ascending, so
// every later scan is over sorted data.
func (st *sabreState) buildDeps() {
	gates := st.c.Gates
	st.succs = make([][]int, len(gates))
	st.indeg = make([]int, len(gates))
	last := make([]int, st.c.NumQubits)
	for i := range last {
		last[i] = -1
	}
	for gi, g := range gates {
		for _, q := range g.Qubits {
			if p := last[q]; p != -1 {
				st.succs[p] = append(st.succs[p], gi)
				st.indeg[gi]++
			}
			last[q] = gi
		}
	}
	st.remain = len(gates)
	for gi := range gates {
		if st.indeg[gi] == 0 {
			st.ready = append(st.ready, gi)
		}
	}
}

// retire removes the dependency edges out of gi and returns the gates
// it newly enabled (ascending; they all have index > gi).
func (st *sabreState) retire(gi int) []int {
	st.remain--
	var enabled []int
	for _, s := range st.succs[gi] {
		st.indeg[s]--
		if st.indeg[s] == 0 {
			enabled = append(enabled, s)
		}
	}
	return enabled
}

// executable reports whether gate gi can run under the current mapping.
// Barriers and single-qubit/measure gates always can; a two-qubit gate
// needs its operands on a coupling link.
func (st *sabreState) executable(gi int) bool {
	g := st.c.Gates[gi]
	if !g.Kind.TwoQubit() {
		return true
	}
	return st.cm.coupled[st.m[g.Qubits[0]]*st.cm.n+st.m[g.Qubits[1]]]
}

// executeReady emits every currently executable ready gate, in gate
// order, cascading through newly enabled gates (their indices are
// always above the retiring gate's, so a single ascending sweep with
// sorted insertion sees them). Barriers retire without emission —
// circuit.Layers never schedules them, so the A* output they must
// match never contains them either. Reports whether anything retired.
func (st *sabreState) executeReady(out *circuit.Circuit, ops *opSlab) bool {
	progress := false
	for i := 0; i < len(st.ready); {
		gi := st.ready[i]
		if !st.executable(gi) {
			i++
			continue
		}
		g := st.c.Gates[gi]
		if g.Kind.TwoQubit() || g.Kind.Arity() == 1 {
			emitGate(out, g, st.m, ops)
		}
		st.ready = append(st.ready[:i], st.ready[i+1:]...)
		for _, e := range st.retire(gi) {
			at := sort.SearchInts(st.ready, e)
			st.ready = append(st.ready, 0)
			copy(st.ready[at+1:], st.ready[at:])
			st.ready[at] = e
		}
		progress = true
	}
	return progress
}

// collectFront gathers the physical endpoint pairs of the blocked ready
// gates (all two-qubit, all non-adjacent after executeReady) and marks
// their qubits active.
func (st *sabreState) collectFront() {
	st.front = st.front[:0]
	for i := range st.active {
		st.active[i] = false
	}
	for _, gi := range st.ready {
		g := st.c.Gates[gi]
		a, b := st.m[g.Qubits[0]], st.m[g.Qubits[1]]
		st.front = append(st.front, [2]int{a, b})
		st.active[a] = true
		st.active[b] = true
	}
}

// collectExtended walks the dependency DAG breadth-first from the front
// gates' successors, gathering up to sabreExtendedSize downstream
// two-qubit gates — the lookahead window that keeps future partners
// close. Traversal order is fully determined by the sorted ready list
// and the ascending successor lists.
func (st *sabreState) collectExtended() {
	st.extend = st.extend[:0]
	st.stamp++
	st.queue = st.queue[:0]
	for _, gi := range st.ready {
		for _, s := range st.succs[gi] {
			if st.visited[s] != st.stamp {
				st.visited[s] = st.stamp
				st.queue = append(st.queue, s)
			}
		}
	}
	for qi := 0; qi < len(st.queue) && len(st.extend) < sabreExtendedSize; qi++ {
		gi := st.queue[qi]
		g := st.c.Gates[gi]
		if g.Kind.TwoQubit() {
			st.extend = append(st.extend, [2]int{st.m[g.Qubits[0]], st.m[g.Qubits[1]]})
		}
		for _, s := range st.succs[gi] {
			if st.visited[s] != st.stamp {
				st.visited[s] = st.stamp
				st.queue = append(st.queue, s)
			}
		}
	}
}

// bestSwap scores every coupling edge with an active endpoint and
// returns the minimizer. The score is the SABRE objective: the mean
// front-layer distance after the hypothetical swap, plus the weighted
// mean extended-set distance, scaled by the decay factor of the
// swapped qubits. Distances come from cm.dist, so under
// CostReliability "distance" is already the −log-success movement cost
// and the same scoring is hardware-aware for free.
func (st *sabreState) bestSwap() (physPair, bool) {
	cm := st.cm
	best := physPair{-1, -1}
	bestScore := 0.0
	for _, e := range cm.edges {
		if !st.active[e.U] && !st.active[e.V] {
			continue
		}
		// Hypothetical position lookup: qubits at e.U and e.V trade places.
		pos := func(p int) int {
			switch p {
			case e.U:
				return e.V
			case e.V:
				return e.U
			}
			return p
		}
		sum := 0.0
		for _, f := range st.front {
			sum += cm.dist[pos(f[0])][pos(f[1])]
		}
		score := sum / float64(len(st.front))
		if len(st.extend) > 0 {
			ext := 0.0
			for _, f := range st.extend {
				ext += cm.dist[pos(f[0])][pos(f[1])]
			}
			score += sabreExtendedWeight * ext / float64(len(st.extend))
		}
		d := st.decay[e.U]
		if st.decay[e.V] > d {
			d = st.decay[e.V]
		}
		score *= d
		if best.U == -1 || score < bestScore {
			best = physPair{e.U, e.V}
			bestScore = score
		}
	}
	return best, best.U != -1
}

func (st *sabreState) resetDecay() {
	for i := range st.decay {
		st.decay[i] = 1
	}
}

// Movement-policy registry: the names a `movement` knob accepts across
// the CLI, the service and the portfolio grid.
const (
	MovementBaseline  = "baseline" // AStar, hop cost (variation-unaware)
	MovementVQM       = "vqm"      // AStar, reliability cost
	MovementVQMHop    = "vqm-hop"  // AStar, reliability cost, MAH=4
	MovementSabre     = "sabre"    // Sabre, reliability cost (scalable VQM)
	MovementSabreHops = "sabre-hops"
)

// MovementNames lists the valid movement-policy names in listing order.
func MovementNames() []string {
	return []string{MovementBaseline, MovementVQM, MovementVQMHop, MovementSabre, MovementSabreHops}
}

// ByName resolves a movement-policy name to its router. maxExpansions
// caps the A*-based policies' per-layer search (0 means the default);
// the SABRE policies ignore it. Unknown names report the valid set.
func ByName(name string, maxExpansions int) (Router, error) {
	switch name {
	case MovementBaseline:
		return AStar{Cost: CostHops, MAH: -1, MaxExpansions: maxExpansions}, nil
	case MovementVQM:
		return AStar{Cost: CostReliability, MAH: -1, MaxExpansions: maxExpansions}, nil
	case MovementVQMHop:
		return AStar{Cost: CostReliability, MAH: 4, MaxExpansions: maxExpansions}, nil
	case MovementSabre:
		return Sabre{Cost: CostReliability}, nil
	case MovementSabreHops:
		return Sabre{Cost: CostHops}, nil
	}
	return nil, fmt.Errorf("route: unknown movement policy %q (valid: %s)",
		name, strings.Join(MovementNames(), ", "))
}
