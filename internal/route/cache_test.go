package route

import (
	"fmt"
	"sync"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/device"
	"vaq/internal/topo"
	"vaq/internal/workloads"
)

// TestCachedCostsSharesAndInvalidates checks the cache key discipline:
// identical calibration data shares one table, while recalibration,
// restriction, and a different cost model each get their own entry.
func TestCachedCostsSharesAndInvalidates(t *testing.T) {
	resetCostCache()
	d1 := goldenQ20()
	d2 := goldenQ20() // distinct Device, identical calibration data

	c1 := cachedCosts(d1, CostReliability)
	c2 := cachedCosts(d2, CostReliability)
	if c1 != c2 {
		t.Fatal("identical devices did not share one cost table")
	}
	if n := costCacheLen(); n != 1 {
		t.Fatalf("cache entries = %d, want 1", n)
	}

	if c3 := cachedCosts(d1, CostHops); c3 == c1 {
		t.Fatal("hop and reliability models shared a table")
	}
	if n := costCacheLen(); n != 2 {
		t.Fatalf("cache entries = %d, want 2", n)
	}

	// Recalibration: a different archive seed yields different error
	// rates, so the table must rebuild.
	recal := calib.Generate(calib.DefaultQ20Config(77))
	dRecal := device.MustNew(recal.Topo, recal.MustMean())
	if c4 := cachedCosts(dRecal, CostReliability); c4 == c1 {
		t.Fatal("recalibrated device reused the stale cost table")
	}

	// Restriction: a sub-device has its own topology and rates.
	sub, _, err := d1.Restrict([]int{0, 1, 2, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if c5 := cachedCosts(sub, CostReliability); c5 == c1 {
		t.Fatal("restricted device reused the full-device cost table")
	}
	if n := costCacheLen(); n != 4 {
		t.Fatalf("cache entries = %d, want 4", n)
	}
}

// TestCachedVsColdIdenticalResults routes every (router, workload) combo
// twice — once against a cold cache, once warm — and demands byte-equal
// Results.
func TestCachedVsColdIdenticalResults(t *testing.T) {
	d := goldenQ20()
	routers := []Router{
		AStar{Cost: CostHops, MAH: -1},
		AStar{Cost: CostReliability, MAH: -1},
		AStar{Cost: CostReliability, MAH: 4},
	}
	for _, r := range routers {
		for _, w := range []int{8, 16} {
			prog := workloads.BV(w)
			init := identity(prog.NumQubits)
			resetCostCache()
			cold, err := r.Route(d, prog, init)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := r.Route(d, prog, init)
			if err != nil {
				t.Fatal(err)
			}
			if ch, wh := resultHash(cold), resultHash(warm); ch != wh {
				t.Fatalf("%s bv-%d: cold hash 0x%x != warm hash 0x%x", r.Name(), w, ch, wh)
			}
		}
	}
}

// TestConcurrentRouteSharedDevice hammers one device from many goroutines
// across both cost models; every routed result must match the serial one.
// scripts/check.sh runs this under the race detector, which exercises the
// cache's per-key build synchronization and the shared read-only tables.
func TestConcurrentRouteSharedDevice(t *testing.T) {
	resetCostCache()
	d := goldenQ20()
	prog := workloads.BV(16)
	init := identity(prog.NumQubits)
	routers := []Router{
		AStar{Cost: CostHops, MAH: -1},
		AStar{Cost: CostReliability, MAH: -1},
	}
	want := make([]uint64, len(routers))
	for i, r := range routers {
		res, err := r.Route(d, prog, init)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resultHash(res)
	}

	resetCostCache() // force the goroutines to race on the first build
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(routers))
	for w := 0; w < workers; w++ {
		for i, r := range routers {
			wg.Add(1)
			go func(i int, r Router) {
				defer wg.Done()
				res, err := r.Route(d, prog, init)
				if err != nil {
					errs <- err
					return
				}
				if h := resultHash(res); h != want[i] {
					errs <- fmt.Errorf("%s: concurrent hash 0x%x != serial 0x%x", r.Name(), h, want[i])
				}
			}(i, r)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCacheStatsConcurrentEviction churns distinct fingerprints past the
// cache bound from many goroutines while readers poll CacheStats.
// scripts/check.sh runs this under -race; the assertions check the
// counter accounting stays coherent through concurrent overflow sweeps:
// every lookup lands in exactly one of hits/misses, evictions only grow,
// and the final eviction total reflects at least one full sweep.
func TestCacheStatsConcurrentEviction(t *testing.T) {
	resetCostCache()
	cacheStats.Reset()
	tp := topo.Linear(3)
	mkDevice := func(worker, i int) *device.Device {
		s := calib.NewSnapshot(tp)
		for _, c := range tp.Couplings {
			s.TwoQubit[c] = 0.001 + 0.00001*float64(worker*10000+i) // unique rates → unique fingerprint
		}
		for q := 0; q < tp.NumQubits; q++ {
			s.OneQubit[q] = 0.001
			s.Readout[q] = 0.01
			s.T1Us[q], s.T2Us[q] = 80, 40
		}
		return device.MustNew(tp, s)
	}

	const workers = 8
	perWorker := maxCostEntries/workers + 64 // total > maxCostEntries → at least one sweep
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Readers: CacheStats must be safe to poll mid-sweep.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := CacheStats()
				if snap.Evictions < last {
					t.Errorf("evictions went backwards: %d -> %d", last, snap.Evictions)
					return
				}
				last = snap.Evictions
			}
		}()
	}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				cachedCosts(mkDevice(w, i), CostHops)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	snap := CacheStats()
	lookups := workers * perWorker
	if got := snap.Hits + snap.Misses; got != uint64(lookups) {
		t.Errorf("hits+misses = %d, want %d (every lookup counted once)", got, lookups)
	}
	if snap.Misses == 0 || snap.Misses > uint64(lookups) {
		t.Errorf("misses = %d out of %d lookups", snap.Misses, lookups)
	}
	if snap.Evictions == 0 {
		t.Errorf("no evictions after %d distinct fingerprints (bound %d)", lookups, maxCostEntries)
	}
	if n := costCacheLen(); n > maxCostEntries {
		t.Errorf("cache grew to %d entries, bound is %d", n, maxCostEntries)
	}
	resetCostCache()
	cacheStats.Reset()
}

// TestCostCacheBounded overfills the cache with distinct tiny devices and
// checks the size bound holds.
func TestCostCacheBounded(t *testing.T) {
	resetCostCache()
	tp := topo.Linear(3)
	for i := 0; i < maxCostEntries+8; i++ {
		s := calib.NewSnapshot(tp)
		for _, c := range tp.Couplings {
			s.TwoQubit[c] = 0.001 + 0.0001*float64(i) // unique rates → unique fingerprint
		}
		for q := 0; q < tp.NumQubits; q++ {
			s.OneQubit[q] = 0.001
			s.Readout[q] = 0.01
			s.T1Us[q], s.T2Us[q] = 80, 40
		}
		cachedCosts(device.MustNew(tp, s), CostHops)
	}
	if n := costCacheLen(); n > maxCostEntries {
		t.Fatalf("cache grew to %d entries, bound is %d", n, maxCostEntries)
	}
	resetCostCache()
}
