// Package clock abstracts time behind an injectable interface so that
// every time-dependent subsystem — the jobs plane's retry backoff and
// token buckets, the calibration drift plane's canary cooldown — reads
// one seam instead of calling time.Now and time.NewTimer directly.
// Production code injects Real; tests inject a Fake and drive it with
// Advance, so backoff and cooldown tests assert exact schedules instead
// of sleeping.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the time source. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTimer returns a timer that fires once after d (immediately
	// for d <= 0, matching time.NewTimer's behavior closely enough for
	// scheduling loops).
	NewTimer(d time.Duration) Timer
}

// Timer is one pending firing. C yields the fire time exactly once;
// Stop cancels a firing that has not yet been delivered and reports
// whether it did.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
}

// Real is the production clock: time.Now and time.NewTimer.
type Real struct{}

func (Real) Now() time.Time { return time.Now() }

func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

// Fake is a deterministic manual clock: Now returns a fixed instant
// until Advance moves it, and timers fire synchronously inside the
// Advance call that reaches their deadline. The zero value is not
// usable; construct with NewFake.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeTimer
}

// NewFake returns a Fake pinned at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *Fake) NewTimer(d time.Duration) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{f: f, deadline: f.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.fired = true
		t.ch <- f.now
		return t
	}
	f.waiters = append(f.waiters, t)
	return t
}

// Advance moves the clock forward by d and fires, in deadline order,
// every pending timer whose deadline is reached. Negative d panics —
// a clock that runs backwards means a test bug, not a scenario.
func (f *Fake) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: Advance with negative duration")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	sort.SliceStable(f.waiters, func(i, j int) bool {
		return f.waiters[i].deadline.Before(f.waiters[j].deadline)
	})
	remaining := f.waiters[:0]
	for _, t := range f.waiters {
		if t.deadline.After(f.now) {
			remaining = append(remaining, t)
			continue
		}
		t.fired = true
		t.ch <- f.now
	}
	f.waiters = append([]*fakeTimer(nil), remaining...)
}

// Pending reports how many timers are waiting to fire — the hook a
// test uses to know a scheduling loop has parked before advancing.
func (f *Fake) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

type fakeTimer struct {
	f        *Fake
	deadline time.Time
	ch       chan time.Time
	fired    bool
	stopped  bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	for i, w := range t.f.waiters {
		if w == t {
			t.f.waiters = append(t.f.waiters[:i], t.f.waiters[i+1:]...)
			break
		}
	}
	return true
}

// Or returns c unless it is nil, in which case the Real clock — the
// defaulting idiom option structs use: `clock.Or(opts.Clock)`.
func Or(c Clock) Clock {
	if c == nil {
		return Real{}
	}
	return c
}
