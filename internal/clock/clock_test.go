package clock

import (
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now %v outside [%v, %v]", got, before, after)
	}
}

func TestRealTimerFires(t *testing.T) {
	tm := Real{}.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real timer never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire reported true")
	}
}

func TestFakeNowFrozen(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}
	f.Advance(3 * time.Second)
	if want := start.Add(3 * time.Second); !f.Now().Equal(want) {
		t.Fatalf("Now after Advance = %v, want %v", f.Now(), want)
	}
}

func TestFakeTimerFiresOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.NewTimer(10 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired before Advance")
	default:
	}
	if got := f.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	f.Advance(9 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired 1s early")
	default:
	}
	f.Advance(time.Second)
	select {
	case at := <-tm.C():
		if want := time.Unix(10, 0); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	if f.Pending() != 0 {
		t.Fatalf("Pending = %d after fire, want 0", f.Pending())
	}
}

func TestFakeTimerImmediate(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	for _, d := range []time.Duration{0, -time.Second} {
		tm := f.NewTimer(d)
		select {
		case <-tm.C():
		default:
			t.Fatalf("NewTimer(%v) did not fire immediately", d)
		}
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	f.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestFakeTimersFireInDeadlineOrder(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	late := f.NewTimer(3 * time.Second)
	early := f.NewTimer(1 * time.Second)
	f.Advance(5 * time.Second)
	a := <-early.C()
	b := <-late.C()
	if !a.Equal(b) {
		// Both fire inside one Advance, at the post-advance instant.
		t.Fatalf("fire times differ: early %v, late %v", a, b)
	}
}

func TestFakeAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewFake(time.Unix(0, 0)).Advance(-time.Second)
}

func TestOr(t *testing.T) {
	if _, ok := Or(nil).(Real); !ok {
		t.Fatal("Or(nil) is not Real")
	}
	f := NewFake(time.Unix(0, 0))
	if Or(f) != Clock(f) {
		t.Fatal("Or(f) did not pass f through")
	}
}

func TestFakeConcurrentUse(t *testing.T) {
	// Raced by `go test -race`: concurrent NewTimer/Advance/Now must
	// be safe — the jobs-plane worker loop parks on timers while tests
	// advance from another goroutine.
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tm := f.NewTimer(time.Duration(i%7) * time.Millisecond)
			tm.Stop()
			f.Now()
		}
	}()
	for i := 0; i < 100; i++ {
		f.Advance(time.Millisecond)
	}
	<-done
}
