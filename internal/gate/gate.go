// Package gate defines the quantum gate set used throughout the repository:
// the single-qubit gates exposed by IBM's NISQ machines, the two-qubit CNOT
// (the native entangling operation whose error rate dominates program
// reliability), the SWAP pseudo-gate used for qubit movement, and the
// measurement operation. Gates carry enough metadata — arity, duration,
// error class — for the compiler and the fault-injection simulator; no
// unitary matrices are needed because the simulator tracks error events,
// not amplitudes.
package gate

import (
	"fmt"
	"time"
)

// Kind identifies a gate type.
type Kind int

// The supported gate kinds. Single-qubit gates share one error class;
// CNOT and SWAP use the two-qubit error class; Measure uses the readout
// error class. Barrier is a scheduling hint with no error contribution.
const (
	I       Kind = iota // identity / explicit idle
	X                   // Pauli-X (NOT)
	Y                   // Pauli-Y
	Z                   // Pauli-Z
	H                   // Hadamard
	S                   // phase gate (sqrt Z)
	Sdg                 // S-dagger
	T                   // T gate (fourth root of Z)
	Tdg                 // T-dagger
	RX                  // X-axis rotation by Param
	RY                  // Y-axis rotation by Param
	RZ                  // Z-axis rotation by Param
	U1                  // diagonal phase, IBM basis gate
	U2                  // single-pulse u2(φ,λ), parameters folded into Param
	U3                  // general single-qubit rotation
	CX                  // CNOT: control Qubits[0], target Qubits[1]
	CZ                  // controlled-Z
	SWAP                // exchange two qubits; compiles to 3 CX on hardware
	Measure             // read out Qubits[0] into a classical bit
	Barrier             // scheduling barrier across its qubits
	numKinds
)

var names = [...]string{
	I: "id", X: "x", Y: "y", Z: "z", H: "h", S: "s", Sdg: "sdg",
	T: "t", Tdg: "tdg", RX: "rx", RY: "ry", RZ: "rz",
	U1: "u1", U2: "u2", U3: "u3",
	CX: "cx", CZ: "cz", SWAP: "swap", Measure: "measure", Barrier: "barrier",
}

// String returns the lower-case OpenQASM-style mnemonic.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(names) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return names[k]
}

// Valid reports whether k is a defined gate kind.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// Arity returns the number of qubits the gate acts on. Barrier arity is
// variable and reported as 0.
func (k Kind) Arity() int {
	switch k {
	case CX, CZ, SWAP:
		return 2
	case Barrier:
		return 0
	default:
		return 1
	}
}

// TwoQubit reports whether the gate uses a coupling link.
func (k Kind) TwoQubit() bool { return k == CX || k == CZ || k == SWAP }

// Parameterized reports whether the gate carries a rotation angle.
func (k Kind) Parameterized() bool {
	switch k {
	case RX, RY, RZ, U1, U2, U3:
		return true
	}
	return false
}

// ErrorClass buckets gates by which calibration figure governs their
// failure probability.
type ErrorClass int

const (
	// NoError marks gates that never fail (barriers, explicit idles).
	NoError ErrorClass = iota
	// OneQubit gates fail with the per-qubit single-qubit gate error rate.
	OneQubit
	// TwoQubit gates fail with the per-link two-qubit (CNOT) error rate;
	// a SWAP is three CNOTs and fails accordingly.
	TwoQubit
	// Readout operations fail with the per-qubit measurement error rate.
	Readout
)

// Class returns the error class of the gate kind.
func (k Kind) Class() ErrorClass {
	switch k {
	case Barrier, I:
		return NoError
	case CX, CZ, SWAP:
		return TwoQubit
	case Measure:
		return Readout
	default:
		return OneQubit
	}
}

// Durations of the physical operations, modeled on published
// superconducting-transmon figures of the IBM Q era: single-qubit pulses
// ~100 ns, CNOTs ~300 ns (a SWAP is three back-to-back CNOTs), measurement
// ~1 µs. The simulator uses these to schedule circuits and to charge
// decoherence for idle time.
const (
	DurationOneQubit = 100 * time.Nanosecond
	DurationTwoQubit = 300 * time.Nanosecond
	DurationSwap     = 3 * DurationTwoQubit
	DurationReadout  = 1 * time.Microsecond
)

// Duration returns the wall-clock duration of one application of the gate.
func (k Kind) Duration() time.Duration {
	switch k {
	case Barrier:
		return 0
	case SWAP:
		return DurationSwap
	case CX, CZ:
		return DurationTwoQubit
	case Measure:
		return DurationReadout
	default:
		return DurationOneQubit
	}
}

// CNOTCost returns how many physical CNOTs the gate costs on hardware:
// 1 for CX/CZ, 3 for SWAP, 0 otherwise. This is the quantity the paper's
// reliability analysis counts, because two-qubit error rates are an order
// of magnitude above single-qubit ones.
func (k Kind) CNOTCost() int {
	switch k {
	case CX, CZ:
		return 1
	case SWAP:
		return 3
	}
	return 0
}

// KindByName maps an OpenQASM-style mnemonic to its Kind.
func KindByName(name string) (Kind, bool) {
	for k, n := range names {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}
