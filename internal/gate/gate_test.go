package gate

import (
	"testing"
	"time"
)

func TestStringRoundTrip(t *testing.T) {
	for k := Kind(0); k.Valid(); k++ {
		name := k.String()
		got, ok := KindByName(name)
		if !ok {
			t.Fatalf("KindByName(%q) not found", name)
		}
		if got != k {
			t.Fatalf("round trip %v -> %q -> %v", k, name, got)
		}
	}
}

func TestKindByNameUnknown(t *testing.T) {
	if _, ok := KindByName("frobnicate"); ok {
		t.Fatal("unknown mnemonic resolved")
	}
}

func TestInvalidKindString(t *testing.T) {
	if s := Kind(999).String(); s != "Kind(999)" {
		t.Fatalf("invalid kind string = %q", s)
	}
	if Kind(999).Valid() || Kind(-1).Valid() {
		t.Fatal("out-of-range kind reported valid")
	}
}

func TestArity(t *testing.T) {
	cases := map[Kind]int{
		X: 1, H: 1, RZ: 1, Measure: 1,
		CX: 2, CZ: 2, SWAP: 2,
		Barrier: 0,
	}
	for k, want := range cases {
		if got := k.Arity(); got != want {
			t.Errorf("%v.Arity() = %d, want %d", k, got, want)
		}
	}
}

func TestTwoQubit(t *testing.T) {
	for k := Kind(0); k.Valid(); k++ {
		want := k == CX || k == CZ || k == SWAP
		if k.TwoQubit() != want {
			t.Errorf("%v.TwoQubit() = %v, want %v", k, k.TwoQubit(), want)
		}
	}
}

func TestParameterized(t *testing.T) {
	for _, k := range []Kind{RX, RY, RZ, U1, U2, U3} {
		if !k.Parameterized() {
			t.Errorf("%v should be parameterized", k)
		}
	}
	for _, k := range []Kind{X, H, CX, Measure, Barrier} {
		if k.Parameterized() {
			t.Errorf("%v should not be parameterized", k)
		}
	}
}

func TestErrorClass(t *testing.T) {
	cases := map[Kind]ErrorClass{
		Barrier: NoError, I: NoError,
		X: OneQubit, H: OneQubit, U3: OneQubit,
		CX: TwoQubit, CZ: TwoQubit, SWAP: TwoQubit,
		Measure: Readout,
	}
	for k, want := range cases {
		if got := k.Class(); got != want {
			t.Errorf("%v.Class() = %v, want %v", k, got, want)
		}
	}
}

func TestDurations(t *testing.T) {
	if d := SWAP.Duration(); d != 3*CX.Duration() {
		t.Fatalf("SWAP duration %v != 3x CX duration %v", d, CX.Duration())
	}
	if CX.Duration() <= H.Duration() {
		t.Fatal("two-qubit gates should be slower than one-qubit gates")
	}
	if Measure.Duration() != time.Microsecond {
		t.Fatalf("readout duration = %v, want 1µs", Measure.Duration())
	}
	if Barrier.Duration() != 0 {
		t.Fatal("barrier should take no time")
	}
}

func TestCNOTCost(t *testing.T) {
	if SWAP.CNOTCost() != 3 {
		t.Fatalf("SWAP CNOT cost = %d, want 3", SWAP.CNOTCost())
	}
	if CX.CNOTCost() != 1 || CZ.CNOTCost() != 1 {
		t.Fatal("CX/CZ CNOT cost should be 1")
	}
	if H.CNOTCost() != 0 || Measure.CNOTCost() != 0 {
		t.Fatal("non-entangling gates should cost 0 CNOTs")
	}
}
