// Package partition implements the Section 8 case study: when a program
// needs at most half the machine's qubits, is it better to run two
// concurrent copies (more trials per unit time, but one copy is stuck with
// the weaker half of the chip) or one copy on the strongest qubits (higher
// PST per trial)? The figure of merit is Successful Trials Per unit Time
// (STPT).
package partition

import (
	"fmt"
	"sort"
	"time"

	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/graphx"
	"vaq/internal/metrics"
	"vaq/internal/sim"
)

// Mode identifies the winning configuration.
type Mode int

const (
	OneStrongCopy Mode = iota
	TwoCopies
)

func (m Mode) String() string {
	if m == OneStrongCopy {
		return "one-strong-copy"
	}
	return "two-copies"
}

// Options tunes the study.
type Options struct {
	// Compile options for every copy (policy defaults to VQAVQM — both
	// modes use identical mapping/movement machinery, as in the paper;
	// "the only difference is the available number of qubits").
	Compile core.Options
	// Sim configures the PST estimation per copy.
	Sim sim.Config
	// Candidates bounds how many of the best-ranked bipartitions are fully
	// compiled and simulated (default 12). Partitions are ranked by the
	// aggregate link reliability of their weaker half, a cheap proxy for
	// the expensive compile+simulate pipeline.
	Candidates int
}

// CopyOutcome reports one running copy.
type CopyOutcome struct {
	Qubits []int // physical qubits (original indices) hosting the copy
	PST    float64
}

// Result reports the study for one workload.
type Result struct {
	Workload string
	// One strong copy.
	One     CopyOutcome
	OneSTPT float64
	// Best two-copy partition found.
	Two     [2]CopyOutcome
	TwoSTPT float64
	// Winner under STPT.
	Winner Mode
}

// Evaluate compares one strong copy against the best two-copy partition.
func Evaluate(d *device.Device, prog *circuit.Circuit, opts Options) (*Result, error) {
	k := prog.NumQubits
	n := d.NumQubits()
	if 2*k > n {
		return nil, fmt.Errorf("partition: program needs %d qubits, two copies exceed machine size %d", k, n)
	}
	if opts.Candidates <= 0 {
		opts.Candidates = 12
	}
	if opts.Compile.Policy == core.Native {
		// Native's random mapping would make the study noise-dominated;
		// the paper uses its (variation-aware) machinery for both modes.
		opts.Compile.Policy = core.VQAVQM
	}

	res := &Result{Workload: prog.Name}

	// One strong copy: the full machine is available; the allocation
	// policy picks the strongest region itself. Like the paper's two-copy
	// mode ("we explore all possible partitions and select the best"),
	// the single-copy mode also searches: it additionally tries each
	// candidate region from the bipartition ranking and keeps the best.
	onePST, oneLatency, err := compileAndSimulate(d, prog, opts)
	if err != nil {
		return nil, err
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	res.One = CopyOutcome{Qubits: all, PST: onePST}
	res.OneSTPT = metrics.STPT(onePST, oneLatency)

	// Two copies: search bipartitions (A gets k..n−k qubits, complement
	// hosts the other copy), rank by the weaker side's strength, then
	// compile+simulate the best candidates.
	cands := rankedBipartitions(d, k, opts.Candidates)
	if len(cands) == 0 {
		return nil, fmt.Errorf("partition: no connected bipartition of %q supports two %d-qubit copies", d.Topology().Name, k)
	}
	// Single-copy region search: the unconstrained strongest k-subgraph
	// (the paper's "pick the most reliable links" region — it need not
	// leave a usable complement) plus every candidate side.
	var oneRegions [][]int
	if sg, _ := d.ReliabilityGraph().StrongestSubgraph(k); sg != nil {
		oneRegions = append(oneRegions, sg)
	}
	for _, cand := range cands {
		for _, qubits := range cand {
			if len(qubits) == k {
				oneRegions = append(oneRegions, qubits)
			}
		}
	}
	for _, qubits := range oneRegions {
		sub, _, err := d.Restrict(qubits)
		if err != nil {
			continue
		}
		pst, lat, err := compileAndSimulate(sub, prog, opts)
		if err != nil {
			continue
		}
		if stpt := metrics.STPT(pst, lat); stpt > res.OneSTPT {
			res.OneSTPT = stpt
			res.One = CopyOutcome{Qubits: qubits, PST: pst}
		}
	}

	bestSTPT := -1.0
	for _, cand := range cands {
		var psts [2]float64
		var latency time.Duration
		ok := true
		for side, qubits := range cand {
			sub, _, err := d.Restrict(qubits)
			if err != nil {
				ok = false
				break
			}
			pst, lat, err := compileAndSimulate(sub, prog, opts)
			if err != nil {
				ok = false
				break
			}
			psts[side] = pst
			if lat > latency {
				latency = lat
			}
		}
		if !ok || latency <= 0 {
			continue
		}
		stpt := (psts[0] + psts[1]) / latency.Seconds()
		if stpt > bestSTPT {
			bestSTPT = stpt
			res.Two[0] = CopyOutcome{Qubits: cand[0], PST: psts[0]}
			res.Two[1] = CopyOutcome{Qubits: cand[1], PST: psts[1]}
			res.TwoSTPT = stpt
		}
	}
	if bestSTPT < 0 {
		return nil, fmt.Errorf("partition: all candidate bipartitions failed to compile")
	}

	if res.OneSTPT >= res.TwoSTPT {
		res.Winner = OneStrongCopy
	} else {
		res.Winner = TwoCopies
	}
	return res, nil
}

// compileAndSimulate estimates one copy's PST. Deep workloads (qft-10,
// alu) have PSTs near 1e-4 where a bounded trial budget observes almost no
// successes; because the Monte-Carlo converges to the analytic product of
// success probabilities (errors are independent), the analytic value is
// used whenever too few successes were observed.
func compileAndSimulate(d *device.Device, prog *circuit.Circuit, opts Options) (pst float64, latency time.Duration, err error) {
	comp, err := core.Compile(d, prog, opts.Compile)
	if err != nil {
		return 0, 0, err
	}
	out := sim.Run(d, comp.Routed.Physical, opts.Sim)
	pst = out.PST
	if out.Successes < 50 {
		pst = sim.AnalyticPST(d, comp.Routed.Physical, opts.Sim)
	}
	return pst, out.TrialLatency, nil
}

// rankedBipartitions enumerates connected splits (A, B) of the machine
// with |A| = k (copy 1's region) and |B| = n−k, both connected, and
// returns the top `limit` by the proxy score: the aggregate CNOT success
// strength of the weaker side. Enumeration walks connected k-subsets
// grown from each seed qubit; for small NISQ machines this covers the
// useful space without the exponential blowup of the full 2^n family.
func rankedBipartitions(d *device.Device, k, limit int) [][2][]int {
	rel := d.ReliabilityGraph()
	n := d.NumQubits()

	seen := map[string]bool{}
	type scored struct {
		sides [2][]int
		score float64
	}
	var out []scored

	consider := func(side []int) {
		if len(side) != k {
			return
		}
		sorted := append([]int(nil), side...)
		sort.Ints(sorted)
		key := fmt.Sprint(sorted)
		if seen[key] {
			return
		}
		seen[key] = true
		comp := complement(sorted, n)
		if !rel.Connected(sorted) || !rel.Connected(comp) {
			return
		}
		sA := rel.AggregateNodeStrength(sorted)
		sB := rel.AggregateNodeStrength(comp)
		score := sA
		if sB < score {
			score = sB
		}
		out = append(out, scored{sides: [2][]int{sorted, comp}, score: score})
	}

	// Greedy strongest subgraph and its complement is always a candidate.
	if sg, _ := rel.StrongestSubgraph(k); sg != nil {
		consider(sg)
	}
	// Connected k-subsets grown from every seed by descending-strength
	// expansion with limited branching.
	for seed := 0; seed < n; seed++ {
		enumerateConnected(rel, seed, k, 3, consider)
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].score > out[j].score })
	if len(out) > limit {
		out = out[:limit]
	}
	result := make([][2][]int, len(out))
	for i, s := range out {
		result[i] = s.sides
	}
	return result
}

// enumerateConnected grows connected sets from seed, branching over the
// `branch` strongest frontier extensions at each step, and calls visit for
// every k-set reached.
func enumerateConnected(g *graphx.Graph, seed, k, branch int, visit func([]int)) {
	var rec func(set []int, in []bool)
	rec = func(set []int, in []bool) {
		if len(set) == k {
			visit(set)
			return
		}
		type ext struct {
			v    int
			gain float64
		}
		var exts []ext
		seenExt := map[int]bool{}
		for _, u := range set {
			for _, v := range g.Neighbors(u) {
				if in[v] || seenExt[v] {
					continue
				}
				seenExt[v] = true
				gain := 0.0
				for _, x := range g.Neighbors(v) {
					if in[x] {
						w, _ := g.Weight(v, x)
						gain += w
					}
				}
				exts = append(exts, ext{v, gain})
			}
		}
		sort.Slice(exts, func(i, j int) bool {
			if exts[i].gain != exts[j].gain {
				return exts[i].gain > exts[j].gain
			}
			return exts[i].v < exts[j].v
		})
		if len(exts) > branch {
			exts = exts[:branch]
		}
		for _, e := range exts {
			in[e.v] = true
			rec(append(set, e.v), in)
			in[e.v] = false
		}
	}
	in := make([]bool, g.N())
	in[seed] = true
	rec([]int{seed}, in)
}

func complement(sorted []int, n int) []int {
	inSet := make([]bool, n)
	for _, v := range sorted {
		inSet[v] = true
	}
	var out []int
	for v := 0; v < n; v++ {
		if !inSet[v] {
			out = append(out, v)
		}
	}
	return out
}
