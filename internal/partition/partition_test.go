package partition

import (
	"sort"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/sim"
	"vaq/internal/topo"
	"vaq/internal/workloads"
)

func q20(seed int64) *device.Device {
	arch := calib.Generate(calib.DefaultQ20Config(seed))
	return device.MustNew(arch.Topo, arch.MustMean())
}

func fastOpts() Options {
	return Options{
		Compile:    core.Options{Policy: core.VQAVQM},
		Sim:        sim.Config{Trials: 20000, Seed: 1},
		Candidates: 6,
	}
}

func TestEvaluateRejectsOversizedProgram(t *testing.T) {
	d := q20(1)
	prog := circuit.New("big", 11) // two copies need 22 > 20
	if _, err := Evaluate(d, prog, fastOpts()); err == nil {
		t.Fatal("11-qubit program accepted for two-copy study on Q20")
	}
}

func TestEvaluateBV10(t *testing.T) {
	d := q20(1)
	res, err := Evaluate(d, workloads.BV(10), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.One.PST <= 0 || res.One.PST > 1 {
		t.Fatalf("one-copy PST = %v", res.One.PST)
	}
	for side := 0; side < 2; side++ {
		if len(res.Two[side].Qubits) != 10 {
			t.Fatalf("copy %d hosts %d qubits, want 10", side, len(res.Two[side].Qubits))
		}
	}
	// The two copies occupy disjoint qubit sets covering the machine.
	all := append(append([]int(nil), res.Two[0].Qubits...), res.Two[1].Qubits...)
	sort.Ints(all)
	for i, q := range all {
		if q != i {
			t.Fatalf("two-copy partition does not cover machine: %v", all)
		}
	}
	if res.OneSTPT <= 0 || res.TwoSTPT <= 0 {
		t.Fatalf("STPTs = %v / %v", res.OneSTPT, res.TwoSTPT)
	}
	// Winner consistency.
	if (res.Winner == OneStrongCopy) != (res.OneSTPT >= res.TwoSTPT) {
		t.Fatalf("winner %v inconsistent with STPTs %v vs %v", res.Winner, res.OneSTPT, res.TwoSTPT)
	}
}

func TestOneStrongCopyPSTAtLeastBestTwoCopy(t *testing.T) {
	// A single copy can use the strongest region of the whole machine, so
	// its PST should match or beat both constrained copies.
	d := q20(3)
	res, err := Evaluate(d, workloads.BV(10), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	bestTwo := res.Two[0].PST
	if res.Two[1].PST > bestTwo {
		bestTwo = res.Two[1].PST
	}
	// Allow Monte-Carlo noise of a few stderr.
	if res.One.PST < bestTwo*0.93 {
		t.Fatalf("one-copy PST %v well below best two-copy PST %v", res.One.PST, bestTwo)
	}
}

func TestExtremeVariationFavorsOneStrongCopy(t *testing.T) {
	// Make half the chip terrible: two copies force one copy onto the bad
	// half, so one strong copy must win on STPT (Figure 15's insight).
	tp := topo.IBMQ20()
	s := calib.NewSnapshot(tp)
	for _, c := range tp.Couplings {
		// Rows 0-1 (qubits 0..9) strong; rows 2-3 terrible.
		if c.A < 10 && c.B < 10 {
			s.TwoQubit[c] = 0.01
		} else {
			s.TwoQubit[c] = 0.35
		}
	}
	for q := 0; q < 20; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.02
		s.T1Us[q], s.T2Us[q] = 80, 40
	}
	d := device.MustNew(tp, s)
	prog := workloads.QFT(10) // SWAP-heavy: weak links are fatal
	res, err := Evaluate(d, prog, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != OneStrongCopy {
		t.Fatalf("winner = %v (one %v vs two %v), want one strong copy", res.Winner, res.OneSTPT, res.TwoSTPT)
	}
}

func TestUniformDeviceFavorsTwoCopies(t *testing.T) {
	// With no variation, both halves are equal, each copy's PST matches
	// the single copy's, and two copies deliver ~2x the trials: two-copy
	// mode must win.
	tp := topo.IBMQ20()
	s := calib.NewSnapshot(tp)
	for _, c := range tp.Couplings {
		s.TwoQubit[c] = 0.02
	}
	for q := 0; q < 20; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.02
		s.T1Us[q], s.T2Us[q] = 80, 40
	}
	d := device.MustNew(tp, s)
	res, err := Evaluate(d, workloads.BV(10), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != TwoCopies {
		t.Fatalf("winner = %v (one %v vs two %v), want two copies on a uniform machine",
			res.Winner, res.OneSTPT, res.TwoSTPT)
	}
}

func TestRankedBipartitionsShape(t *testing.T) {
	d := q20(5)
	cands := rankedBipartitions(d, 10, 8)
	if len(cands) == 0 {
		t.Fatal("no bipartitions found on Q20")
	}
	if len(cands) > 8 {
		t.Fatalf("limit not applied: %d candidates", len(cands))
	}
	rel := d.ReliabilityGraph()
	for _, cand := range cands {
		if len(cand[0]) != 10 || len(cand[1]) != 10 {
			t.Fatalf("bad split sizes: %d/%d", len(cand[0]), len(cand[1]))
		}
		if !rel.Connected(cand[0]) || !rel.Connected(cand[1]) {
			t.Fatal("disconnected side in candidate bipartition")
		}
	}
}

func TestModeString(t *testing.T) {
	if OneStrongCopy.String() != "one-strong-copy" || TwoCopies.String() != "two-copies" {
		t.Fatal("mode strings wrong")
	}
}
