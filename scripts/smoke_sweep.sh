#!/usr/bin/env sh
# Parametric-sweep-plane smoke: boot two nisqd daemons — one pinned to a
# single worker, one at the GOMAXPROCS default — and POST the same
# 100-point qaoa-6 sweep to both. The responses must be byte-identical
# (the compile-once/rebind-many fan-out is deterministic at any worker
# count), a replay must come back as a response-cache hit, and the
# sweep bookkeeping (compiles_saved, nisqd_sweep_* metrics) must agree
# — end-to-end through real processes and real HTTP.
set -eu
cd "$(dirname "$0")/.."

PORT1="${NISQD_SMOKE_SWEEP_PORT:-18084}"
PORT2=$((PORT1 + 1))
BASE1="http://127.0.0.1:$PORT1"
BASE2="http://127.0.0.1:$PORT2"
WORK="$(mktemp -d)"
BIN="$WORK/nisqd"
PID1=""
PID2=""

go build -o "$BIN" ./cmd/nisqd

cleanup() {
	[ -n "$PID1" ] && kill "$PID1" 2> /dev/null || true
	[ -n "$PID2" ] && kill "$PID2" 2> /dev/null || true
	wait 2> /dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT

"$BIN" -addr "127.0.0.1:$PORT1" -workers 1 >> "$WORK/nisqd1.log" 2>&1 &
PID1=$!
"$BIN" -addr "127.0.0.1:$PORT2" >> "$WORK/nisqd2.log" 2>&1 &
PID2=$!
for BASE in "$BASE1" "$BASE2"; do
	i=0
	until curl -sf "$BASE/healthz" > /dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 100 ]; then
			echo "smoke_sweep: daemon at $BASE never became healthy" >&2
			cat "$WORK"/nisqd*.log >&2
			exit 1
		fi
		sleep 0.1
	done
done

# A 100-point grid over qaoa-6's (γ, β) plane, identical on both sends.
awk 'BEGIN {
	printf("{\"ansatz\":\"qaoa-6\",\"policy\":\"vqm\",\"points\":[")
	for (i = 0; i < 100; i++)
		printf("%s[%.3f,%.3f]", i ? "," : "", 0.031 * i, 0.017 * i)
	printf("]}")
}' > "$WORK/req.json"

curl -sf -X POST "$BASE1/v1/sweep" -H 'Content-Type: application/json' \
	--data-binary @"$WORK/req.json" -o "$WORK/resp1.json" -D "$WORK/hdr1"
curl -sf -X POST "$BASE2/v1/sweep" -H 'Content-Type: application/json' \
	--data-binary @"$WORK/req.json" -o "$WORK/resp2.json"

cmp -s "$WORK/resp1.json" "$WORK/resp2.json" || {
	echo "smoke_sweep: 1-worker and GOMAXPROCS-worker responses differ" >&2
	diff "$WORK/resp1.json" "$WORK/resp2.json" >&2 || true
	exit 1
}
grep -q 'X-Nisqd-Cache: miss' "$WORK/hdr1" || {
	echo "smoke_sweep: first request was not a cache miss" >&2
	cat "$WORK/hdr1" >&2
	exit 1
}

# The sweep body must record one compile amortized over the whole grid.
grep -q '"compiles_saved": 99' "$WORK/resp1.json" || {
	echo "smoke_sweep: response does not report 99 compiles saved" >&2
	head -c 400 "$WORK/resp1.json" >&2
	exit 1
}

# A replay must be served from the response cache, byte-identical.
curl -sf -X POST "$BASE1/v1/sweep" -H 'Content-Type: application/json' \
	--data-binary @"$WORK/req.json" -o "$WORK/resp1b.json" -D "$WORK/hdr1b"
grep -q 'X-Nisqd-Cache: hit' "$WORK/hdr1b" || {
	echo "smoke_sweep: replay was not a cache hit" >&2
	cat "$WORK/hdr1b" >&2
	exit 1
}
cmp -s "$WORK/resp1.json" "$WORK/resp1b.json" || {
	echo "smoke_sweep: cached replay differs from original response" >&2
	exit 1
}

# Metrics must agree: 200 points over the two requests (hit included).
METRICS="$(curl -sf "$BASE1/metrics")"
case "$METRICS" in
*'nisqd_sweep_points_total 200'*) ;;
*)
	echo "smoke_sweep: metrics did not count 200 sweep points" >&2
	printf '%s\n' "$METRICS" | grep nisqd_sweep >&2 || true
	exit 1
	;;
esac

echo "smoke_sweep: 100-point sweep byte-identical at 1 vs GOMAXPROCS workers, cache and metrics agree OK"
