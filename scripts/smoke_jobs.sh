#!/usr/bin/env sh
# Durable-job-plane smoke: boot nisqd with a persistent queue, submit a
# slow portfolio job, SIGKILL the daemon mid-execution, restart it on
# the same queue directory, and assert the job is recovered,
# re-executed, and finishes with a result byte-identical to a
# synchronous run of the same request on a daemon that never crashed
# (identical after zeroing compile_ns/total_ns, the wall-clock
# diagnostics that are the portfolio response's only nondeterministic
# bytes — the same normalization the golden tests apply). Exercises the
# full durability contract end-to-end through real processes — persist-
# before-ack, crash-marker recovery, deterministic re-execution — which
# in-process tests cannot: only a real SIGKILL proves nothing essential
# lives outside the store directory.
set -eu
cd "$(dirname "$0")/.."

PORT="${NISQD_SMOKE_JOBS_PORT:-18081}"
REF_PORT=$((PORT + 1))
BASE="http://127.0.0.1:$PORT"
REF_BASE="http://127.0.0.1:$REF_PORT"
WORK="$(mktemp -d)"
BIN="$WORK/nisqd"
JOBS_DIR="$WORK/jobs"
LOG="$WORK/nisqd.log"
PID=""
REF_PID=""

go build -o "$BIN" ./cmd/nisqd

cleanup() {
	[ -n "$PID" ] && kill "$PID" 2> /dev/null || true
	[ -n "$REF_PID" ] && kill "$REF_PID" 2> /dev/null || true
	wait 2> /dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT

wait_healthy() {
	i=0
	until curl -sf "$1/healthz" > /dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 100 ]; then
			echo "smoke_jobs: daemon at $1 never became healthy" >&2
			cat "$LOG" >&2
			exit 1
		fi
		sleep 0.1
	done
}

boot() {
	"$BIN" -addr "127.0.0.1:$PORT" -trials 100000000 \
		-jobs-dir "$JOBS_DIR" -job-workers 1 >> "$LOG" 2>&1 &
	PID=$!
	wait_healthy "$BASE"
}

# job_state ID -> current state string
job_state() {
	curl -sf "$BASE/v1/jobs/$1" | sed -n 's/^ *"state": *"\([a-z]*\)".*/\1/p'
}

# The job: a portfolio whose Monte-Carlo refinement stage (8 candidates
# x 100M trials) runs for seconds, so the SIGKILL below reliably lands
# mid-execution.
REQUEST='{"workload":"bv-10","device":"q20","trials":100000000,"cycles":2,"random_starts":2,"top_k":8}'

boot

ACCEPT="$(curl -sf -X POST "$BASE/v1/jobs" \
	-H 'Content-Type: application/json' \
	-d "{\"kind\":\"portfolio\",\"request\":$REQUEST}")"
ID="$(printf '%s' "$ACCEPT" | sed -n 's/^ *"id": *"\([0-9a-f]*\)".*/\1/p')"
if [ -z "$ID" ]; then
	echo "smoke_jobs: submission not accepted: $ACCEPT" >&2
	exit 1
fi

# Wait for the worker to pick the job up, then kill the daemon without
# any chance to drain or checkpoint further.
i=0
until [ "$(job_state "$ID")" = "running" ]; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "smoke_jobs: job $ID never started running" >&2
		exit 1
	fi
	sleep 0.1
done
kill -9 "$PID"
wait "$PID" 2> /dev/null || true
PID=""

# Restart on the same queue directory: the orphaned job must come back
# queued, re-execute, and succeed.
boot
i=0
while :; do
	STATE="$(job_state "$ID")"
	[ "$STATE" = "succeeded" ] && break
	case "$STATE" in failed | cancelled)
		echo "smoke_jobs: recovered job ended $STATE" >&2
		curl -sf "$BASE/v1/jobs/$ID" >&2
		exit 1
		;;
	esac
	i=$((i + 1))
	if [ "$i" -ge 600 ]; then
		echo "smoke_jobs: recovered job stuck in '$STATE'" >&2
		exit 1
	fi
	sleep 0.1
done

VIEW="$(curl -sf "$BASE/v1/jobs/$ID")"
case "$VIEW" in
*'"interruptions": 1'*) ;;
*)
	echo "smoke_jobs: recovered job does not record the crash: $VIEW" >&2
	exit 1
	;;
esac
METRICS="$(curl -sf "$BASE/metrics")"
case "$METRICS" in
*'nisqd_jobs_recovered_total 1'*) ;;
*)
	echo "smoke_jobs: metrics did not count the recovery" >&2
	exit 1
	;;
esac

# normalize_timings: zero the wall-clock diagnostic fields, leaving
# every computed byte (rankings, seeds, PSTs, layouts) exact.
normalize_timings() {
	sed -E 's/"(compile_ns|total_ns)": [0-9]+/"\1": 0/'
}

curl -sf "$BASE/v1/jobs/$ID/result" | normalize_timings > "$WORK/resumed.json"

# Reference: the same request, synchronously, on a daemon that never
# crashed (separate port, no shared state). Byte-identical or bust.
"$BIN" -addr "127.0.0.1:$REF_PORT" -trials 100000000 >> "$LOG" 2>&1 &
REF_PID=$!
wait_healthy "$REF_BASE"
curl -sf -X POST "$REF_BASE/v1/portfolio" \
	-H 'Content-Type: application/json' \
	-d "$REQUEST" | normalize_timings > "$WORK/clean.json"

if ! cmp -s "$WORK/resumed.json" "$WORK/clean.json"; then
	echo "smoke_jobs: resumed result is not byte-identical to the uninterrupted run" >&2
	diff "$WORK/resumed.json" "$WORK/clean.json" >&2 || true
	exit 1
fi

echo "smoke_jobs: kill -9, recover, byte-identical resume OK"
