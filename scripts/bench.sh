#!/usr/bin/env sh
# Benchmark runner + snapshot writer. Runs the repository's tracked
# benchmarks (Monte-Carlo simulator, compile pipeline, routing core,
# serve-layer response cache, portfolio fan-out) with
# allocation reporting and parses the output into a machine-readable
# BENCH_<yyyymmdd>.json in the repo root, so perf regressions can be
# diffed across PRs. Usage:
#
#	scripts/bench.sh          # one run of each benchmark
#	scripts/bench.sh 5        # -count=5 (five samples per benchmark)
set -eu
cd "$(dirname "$0")/.."

COUNT="${1:-1}"
PATTERN='MonteCarlo|CompilePipeline|Route|NewCosts|SearchSwaps|ServeCompile|Portfolio'
OUT="BENCH_$(date +%Y%m%d).json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -count="$COUNT" ./... | tee "$RAW"

awk -v count="$COUNT" '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ {
	ns = ""; bop = "0"; aop = "0"
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		else if ($i == "B/op") bop = $(i-1)
		else if ($i == "allocs/op") aop = $(i-1)
	}
	if (ns == "") next
	if (n++) printf(",\n")
	printf("    {\"name\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", $1, ns, bop, aop)
}
END {
	print ""
	print "  ],"
	printf("  \"goos\": \"%s\", \"goarch\": \"%s\", \"count\": %s\n", goos, goarch, count)
	print "}"
}
' "$RAW" > "$OUT.tmp"

{
	printf '{\n  "date": "%s",\n  "benchmarks": [\n' "$(date +%Y-%m-%d)"
	cat "$OUT.tmp"
} > "$OUT"
rm -f "$OUT.tmp"
echo "wrote $OUT"
