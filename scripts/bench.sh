#!/usr/bin/env sh
# Benchmark runner + snapshot writer + regression comparator.
#
# Run mode executes the repository's tracked benchmarks (Monte-Carlo
# simulator, compile pipeline, routing core, serve-layer response cache,
# portfolio fan-out) with allocation reporting and parses the output into
# a machine-readable BENCH_<yyyymmdd>.json in the repo root, so perf
# regressions can be diffed across PRs. Snapshot keys are stable and
# deduplicated: the GOMAXPROCS suffix (-8) and Go's collision suffix
# (#01) are stripped, and repeated samples of one benchmark (-count > 1,
# or historical duplicate sub-benchmark names) keep the minimum ns/op —
# the least-noise estimate of the true cost.
#
# Compare mode diffs two snapshots and fails (non-zero exit) when any
# benchmark present in both regressed by more than 10% ns/op, for CI and
# pre-merge checks.
#
#	scripts/bench.sh                        # one run of each benchmark
#	scripts/bench.sh 5                      # -count=5 (five samples each)
#	scripts/bench.sh -compare OLD.json NEW.json
#
# Environment overrides:
#	BENCH_OUT        snapshot path (default BENCH_<yyyymmdd>.json)
#	BENCHTIME        go test -benchtime value (default 1s)
#	BENCH_TOLERANCE  compare-mode regression ratio (default 1.10 = +10%)
#	BENCH_MATCH      compare-mode key filter, awk ERE (default: all keys)
set -eu

# canonical_rows <file>: emit "name ns_op trials_sec" per benchmark with
# canonicalized names, minimum ns/op (maximum trials/sec) across
# duplicates.
canonical_rows() {
	awk '
	match($0, /"name": *"[^"]*"/) {
		name = substr($0, RSTART, RLENGTH)
		sub(/^"name": *"/, "", name); sub(/"$/, "", name)
		sub(/-[0-9]+$/, "", name); sub(/#[0-9]+$/, "", name)
		ns = ""; ts = 0
		if (match($0, /"ns_op": *[0-9.e+-]+/)) {
			ns = substr($0, RSTART, RLENGTH); sub(/^"ns_op": */, "", ns)
		}
		if (ns == "") next
		if (match($0, /"trials_sec": *[0-9.e+-]+/)) {
			ts = substr($0, RSTART, RLENGTH); sub(/^"trials_sec": */, "", ts)
		}
		if (!(name in best) || ns + 0 < best[name] + 0) best[name] = ns
		if (ts + 0 > rate[name] + 0) rate[name] = ts
	}
	END { for (name in best) printf("%s %s %s\n", name, best[name], rate[name]) }
	' "$1"
}

if [ "${1:-}" = "-compare" ]; then
	if [ $# -ne 3 ]; then
		echo "usage: scripts/bench.sh -compare OLD.json NEW.json" >&2
		exit 2
	fi
	OLD_ROWS="$(mktemp)"
	NEW_ROWS="$(mktemp)"
	trap 'rm -f "$OLD_ROWS" "$NEW_ROWS"' EXIT
	canonical_rows "$2" > "$OLD_ROWS"
	canonical_rows "$3" > "$NEW_ROWS"
	awk -v old="$2" -v new="$3" \
	    -v tol="${BENCH_TOLERANCE:-1.10}" -v keyre="${BENCH_MATCH:-.}" '
	NR == FNR { ns[$1] = $2; next }
	($1 in ns) && ($1 ~ keyre) {
		ratio = $2 / ns[$1]
		if (ratio > tol + 0) {
			printf("REGRESSION %s: %.0f -> %.0f ns/op (%+.1f%%)\n", $1, ns[$1], $2, (ratio - 1) * 100)
			bad++
		} else {
			printf("ok         %s: %.0f -> %.0f ns/op (%+.1f%%)\n", $1, ns[$1], $2, (ratio - 1) * 100)
		}
	}
	END {
		if (bad) { printf("%d benchmark(s) regressed past %.2fx from %s to %s\n", bad, tol, old, new); exit 1 }
		printf("no ns/op regressions past %.2fx\n", tol)
	}
	' "$OLD_ROWS" "$NEW_ROWS"
	exit $?
fi

cd "$(dirname "$0")/.."

COUNT="${1:-1}"
PATTERN='MonteCarlo|CompilePipeline|Route|NewCosts|SearchSwaps|ServeCompile|Portfolio|JobThroughput|DriftDetect|CanaryRecompile|RebindVsRecompile|SweepServe'
OUT="${BENCH_OUT:-BENCH_$(date +%Y%m%d).json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "${BENCHTIME:-1s}" -count="$COUNT" ./... | tee "$RAW"

awk -v count="$COUNT" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name); sub(/#[0-9]+$/, "", name)
	ns = ""; bop = "0"; aop = "0"; ts = "0"
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		else if ($i == "B/op") bop = $(i-1)
		else if ($i == "allocs/op") aop = $(i-1)
		else if ($i == "trials/sec") ts = $(i-1)
	}
	if (ns == "") next
	# Deduplicate: keep the fastest sample per canonical name.
	if (!(name in best) || ns + 0 < best[name] + 0) {
		if (!(name in best)) order[n++] = name
		best[name] = ns; bops[name] = bop; aops[name] = aop
	}
	if (ts + 0 > rate[name] + 0) rate[name] = ts
}
END {
	for (i = 0; i < n; i++) {
		name = order[i]
		printf("    {\"name\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s", name, best[name], bops[name], aops[name])
		if (rate[name] + 0 > 0) printf(", \"trials_sec\": %s", rate[name])
		printf("}%s\n", i < n - 1 ? "," : "")
	}
	print "  ],"
	printf("  \"goos\": \"%s\", \"goarch\": \"%s\", \"count\": %s\n", goos, goarch, count)
	print "}"
}
' "$RAW" > "$OUT.tmp"

{
	printf '{\n  "date": "%s",\n  "benchmarks": [\n' "$(date +%Y-%m-%d)"
	cat "$OUT.tmp"
} > "$OUT"
rm -f "$OUT.tmp"
echo "wrote $OUT"
