#!/usr/bin/env sh
# Calibration-drift-plane smoke: boot nisqd with a persistent cycle
# store and a low drift threshold, register a Q5 device, warm one hot
# compiled circuit, then append three progressively different
# calibration cycles. The detector must trigger, the canary recompiler
# must re-run the hot circuit and report a predicted-PST delta, and the
# drift report, window query, and nisqd_drift_* metrics must all agree
# — end-to-end through a real process, real HTTP, and a real store
# directory.
set -eu
cd "$(dirname "$0")/.."

PORT="${NISQD_SMOKE_DRIFT_PORT:-18083}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
BIN="$WORK/nisqd"
LOG="$WORK/nisqd.log"
PID=""

go build -o "$BIN" ./cmd/nisqd

cleanup() {
	[ -n "$PID" ] && kill "$PID" 2> /dev/null || true
	wait 2> /dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT

"$BIN" -addr "127.0.0.1:$PORT" -drift-dir "$WORK/drift" \
	-drift-threshold 0.02 -drift-window 8 >> "$LOG" 2>&1 &
PID=$!
i=0
until curl -sf "$BASE/healthz" > /dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "smoke_drift: daemon never became healthy" >&2
		cat "$LOG" >&2
		exit 1
	fi
	sleep 0.1
done

# Register the device from a generated Q5 archive, then warm one hot
# circuit so the canary has a recompile target.
go run ./cmd/calgen -device q5 -seed 1 -days 1 -format json > "$WORK/base.json"
curl -sf -X POST "$BASE/v1/calibration?name=smoke-q5" \
	-H 'Content-Type: application/json' \
	--data-binary @"$WORK/base.json" > /dev/null

curl -sf -X POST "$BASE/v1/compile" \
	-H 'Content-Type: application/json' \
	-d '{"workload":"triswap","device":"smoke-q5","policy":"vqa+vqm"}' > /dev/null

# Three drifting cycles: independently seeded archives on the same
# topology read as large per-link deviations, so the EWMA crosses the
# low threshold well inside the window.
for SEED in 2 3 4; do
	go run ./cmd/calgen -device q5 -seed "$SEED" -days 1 -format json > "$WORK/cycle.json"
	curl -sf -X POST "$BASE/v1/calibration?name=smoke-q5&append=true" \
		-H 'Content-Type: application/json' \
		--data-binary @"$WORK/cycle.json" > /dev/null
done

# The window query must serve the stored cycles back.
WINDOW="$(curl -sf "$BASE/v1/calibration/smoke-q5?window=2")"
case "$WINDOW" in
*'"snapshots"'*) ;;
*)
	echo "smoke_drift: window query returned no snapshots: $WINDOW" >&2
	exit 1
	;;
esac

# The drift report must be triggered and carry a canary delta.
REPORT="$(curl -sf "$BASE/v1/drift/smoke-q5")"
case "$REPORT" in
*'"triggered": true'*) ;;
*)
	echo "smoke_drift: detector did not trigger: $REPORT" >&2
	exit 1
	;;
esac
case "$REPORT" in
*'"deltas"'*) ;;
*)
	echo "smoke_drift: report carries no canary deltas: $REPORT" >&2
	exit 1
	;;
esac
printf '%s' "$REPORT" | grep -q '"delta": *-\{0,1\}[0-9]' || {
	echo "smoke_drift: canary delta is not numeric: $REPORT" >&2
	exit 1
}

# Metrics must agree: three stored cycles, at least one canary run.
METRICS="$(curl -sf "$BASE/metrics")"
case "$METRICS" in
*'nisqd_drift_cycles_total 3'*) ;;
*)
	echo "smoke_drift: metrics did not count 3 cycles" >&2
	printf '%s\n' "$METRICS" | grep nisqd_drift >&2 || true
	exit 1
	;;
esac
printf '%s\n' "$METRICS" | grep -q '^nisqd_drift_canary_runs_total [1-9]' || {
	echo "smoke_drift: metrics did not count a canary run" >&2
	printf '%s\n' "$METRICS" | grep nisqd_drift >&2 || true
	exit 1
}

echo "smoke_drift: drift detected, canary recompiled, report/metrics agree OK"
