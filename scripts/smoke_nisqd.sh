#!/usr/bin/env sh
# nisqd boot-and-probe smoke: build the daemon, boot it on a local port,
# wait for /healthz, run one real compile through the HTTP surface,
# check the metrics endpoint counted it, and shut the daemon down.
# Catches wiring failures (flag parsing, listener setup, route
# registration, serialization) that unit tests of the handler cannot.
set -eu
cd "$(dirname "$0")/.."

PORT="${NISQD_SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/nisqd"
LOG="$(mktemp)"

go build -o "$BIN" ./cmd/nisqd

"$BIN" -addr "127.0.0.1:$PORT" -trials 1000000 > "$LOG" 2>&1 &
PID=$!
cleanup() {
	kill "$PID" 2> /dev/null || true
	wait "$PID" 2> /dev/null || true
	rm -f "$LOG"
	rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

# Wait (up to ~10s) for the daemon to come up.
i=0
until curl -sf "$BASE/healthz" > /dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "smoke: daemon never became healthy" >&2
		cat "$LOG" >&2
		exit 1
	fi
	sleep 0.1
done

# One real compile through the full stack; the response must carry the
# nisqc-format report.
RESP="$(curl -sf -X POST "$BASE/v1/compile" \
	-H 'Content-Type: application/json' \
	-d '{"workload":"bv-8","policy":"vqm","trials":2000}')"
case "$RESP" in
*'"report"'*'program     bv-8'*) ;;
*)
	echo "smoke: compile response missing report: $RESP" >&2
	exit 1
	;;
esac

# The metrics endpoint must have counted the request.
METRICS="$(curl -sf "$BASE/metrics")"
case "$METRICS" in
*'nisqd_requests_total{endpoint="/v1/compile"} 1'*) ;;
*)
	echo "smoke: metrics did not count the compile request" >&2
	echo "$METRICS" >&2
	exit 1
	;;
esac

# Graceful shutdown: SIGTERM must exit cleanly.
kill -TERM "$PID"
wait "$PID"
echo "smoke: nisqd boot-and-probe OK"
