#!/usr/bin/env sh
# Tier-1 + concurrency gate: vet, then the full test suite under the race
# detector, which exercises the worker pool (internal/parallel), the
# block-sharded Monte-Carlo simulator, and the concurrent experiment
# fan-out. Pass extra go-test flags through, e.g.:
#
#	scripts/check.sh -short       # quick race pass
#	scripts/check.sh -count=1     # force re-run
set -eu
cd "$(dirname "$0")/.."
go vet ./...
go test -race "$@" ./...
# Benchmark smoke: one iteration of every tracked benchmark, so a change
# that breaks a benchmark body (rather than its performance) fails the
# gate instead of surfacing at the next scripts/bench.sh run.
go test -run '^$' -bench 'MonteCarlo|CompilePipeline|Route|NewCosts|SearchSwaps' -benchtime=1x ./...
# Fuzz smoke: a short native-fuzzing burst on the two untrusted-input
# parsers (QASM source, calibration archives). The committed
# testdata/fuzz corpora replay on every plain `go test` run; this burst
# additionally mutates for a few seconds so new crashes surface here
# before they surface in a user's archive.
go test -run '^$' -fuzz FuzzParse -fuzztime 10s ./internal/qasm
go test -run '^$' -fuzz FuzzReadJSON -fuzztime 10s ./internal/calib
