#!/usr/bin/env sh
# Tier-1 + concurrency gate: vet, then the full test suite under the race
# detector, which exercises the worker pool (internal/parallel), the
# block-sharded Monte-Carlo simulator, and the concurrent experiment
# fan-out. Pass extra go-test flags through, e.g.:
#
#	scripts/check.sh -short       # quick race pass
#	scripts/check.sh -count=1     # force re-run
set -eu
cd "$(dirname "$0")/.."
go vet ./...
go test -race "$@" ./...
# Large-device smoke, kept explicit so even a -short run exercises it:
# SABRE-route a 60-qubit workload on the 399-qubit heavy-hex fleet under
# the race detector (the A* router cannot attempt this size at all).
go test -race -count=1 -run 'TestSabreHeavyHex399|TestSabreConcurrentDeterminism' ./internal/route
# Benchmark smoke: one iteration of every tracked benchmark — including
# the packed Monte-Carlo kernel benches (BenchmarkMonteCarlo runs packed,
# BenchmarkMonteCarloScalar the reference path) — so a change that breaks
# a benchmark body (rather than its performance) fails the gate instead
# of surfacing at the next scripts/bench.sh run.
go test -run '^$' -bench 'MonteCarlo|CompilePipeline|Route|NewCosts|SearchSwaps|ServeCompile|Portfolio|JobThroughput|DriftDetect|CanaryRecompile|RebindVsRecompile|SweepServe' -benchtime=1x ./...
# Perf-regression gate: rebench against the newest committed snapshot and
# fail on big ns/op regressions. Only the stable keys are compared — the
# compute-bound kernels and routing cores whose timings are reproducible
# on a loaded machine — and the tolerance is wide (1.5x) so the gate
# catches algorithmic regressions, not scheduler noise. A full-precision
# diff is still available via scripts/bench.sh -compare with defaults.
BASELINE="$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)"
if [ -n "$BASELINE" ]; then
	FRESH="$(mktemp -t bench_fresh_XXXXXX.json)"
	BENCH_OUT="$FRESH" BENCHTIME=100ms scripts/bench.sh > /dev/null
	BENCH_TOLERANCE=1.5 \
	BENCH_MATCH='MonteCarlo$|NewCosts|SearchSwaps|RouteCached|RouteScale/(bv|qft16)/sabre|RebindVsRecompile/rebind' \
	scripts/bench.sh -compare "$BASELINE" "$FRESH" || { rm -f "$FRESH"; exit 1; }
	rm -f "$FRESH"
else
	echo "no committed BENCH_*.json baseline; skipping perf-regression gate"
fi
# Fuzz smoke: a short native-fuzzing burst on the untrusted-input
# parsers (QASM source, calibration archives, nisqd request bodies). The
# committed testdata/fuzz corpora replay on every plain `go test` run;
# this burst additionally mutates for a few seconds so new crashes
# surface here before they surface in a user's archive or request.
go test -run '^$' -fuzz FuzzParse -fuzztime 10s ./internal/qasm
go test -run '^$' -fuzz FuzzReadJSON -fuzztime 10s ./internal/calib
go test -run '^$' -fuzz FuzzCompileRequest -fuzztime 10s ./internal/serve
go test -run '^$' -fuzz FuzzPortfolioRequest -fuzztime 10s ./internal/serve
go test -run '^$' -fuzz FuzzCycleAppend -fuzztime 10s ./internal/caldrift
go test -run '^$' -fuzz FuzzDriftWindowQuery -fuzztime 10s ./internal/caldrift
# Durability smoke: kill -9 a daemon mid-job and prove the restarted
# daemon resumes it to a byte-identical result (real processes, real
# SIGKILL — the one scenario in-process tests cannot stage).
scripts/smoke_jobs.sh
# Drift-plane smoke: register a device, append drifting calibration
# cycles over real HTTP, and prove the detector triggers and the canary
# recompiler reports a predicted-PST delta (see scripts/smoke_drift.sh).
scripts/smoke_drift.sh
# Sweep-plane smoke: the same 100-point parameter sweep against a
# 1-worker and a GOMAXPROCS-worker daemon must come back byte-identical
# (see scripts/smoke_sweep.sh).
scripts/smoke_sweep.sh
# Coverage floor: total statement coverage must not regress below the
# recorded baseline (88.6% at the floor's introduction, gated with a
# small margin). Raise the floor when coverage improves; never lower it.
COVER_FLOOR=85.0
COVER_PROFILE="$(mktemp)"
trap 'rm -f "$COVER_PROFILE"' EXIT
go test -count=1 -coverprofile="$COVER_PROFILE" ./... > /dev/null
go tool cover -func="$COVER_PROFILE" | awk -v floor="$COVER_FLOOR" '
/^total:/ {
	sub(/%/, "", $NF)
	printf("total coverage %.1f%% (floor %.1f%%)\n", $NF, floor)
	if ($NF + 0 < floor + 0) { print "FAIL: coverage below floor"; exit 1 }
}'
