// Quickstart: build a circuit, model a NISQ machine from characterization
// data, compile it under the paper's policies, and compare reliability.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/sim"
)

func main() {
	// 1. A 4-qubit GHZ-state program over logical qubits.
	prog := circuit.New("ghz-4", 4).
		H(0).
		CX(0, 1).
		CX(1, 2).
		CX(2, 3).
		MeasureAll()

	// 2. A 20-qubit IBM-Q20 model: synthetic 52-day characterization
	//    archive, averaged into one calibration snapshot.
	arch := calib.Generate(calib.DefaultQ20Config(2019))
	dev := device.MustNew(arch.Topo, arch.MustMean())
	strongest, sErr := arch.MustMean().StrongestLink()
	weakest, wErr := arch.MustMean().WeakestLink()
	fmt.Printf("machine %s: best link Q%d-Q%d (%.3f error), worst Q%d-Q%d (%.3f error), %.1fx spread\n\n",
		dev.Topology().Name, strongest.A, strongest.B, sErr, weakest.A, weakest.B, wErr, wErr/sErr)

	// 3. Compile under each policy and estimate the Probability of a
	//    Successful Trial with the Monte-Carlo fault injector.
	fmt.Printf("%-10s %6s %7s %9s\n", "policy", "swaps", "PST", "vs base")
	var basePST float64
	for _, policy := range core.AllPolicies() {
		comp, err := core.Compile(dev, prog, core.Options{Policy: policy, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		out := sim.Run(dev, comp.Routed.Physical, sim.Config{Trials: 200000, Seed: 7})
		if policy == core.Baseline {
			basePST = out.PST
		}
		rel := "-"
		if basePST > 0 {
			rel = fmt.Sprintf("%.2fx", out.PST/basePST)
		}
		fmt.Printf("%-10s %6d %7.4f %9s\n", policy, comp.Swaps(), out.PST, rel)
	}
	fmt.Println("\nVariation-aware policies steer work onto the strong links — higher PST at equal or slightly higher SWAP counts.")
}
