// Bernstein–Vazirani deep dive: the paper's flagship workload, compiled
// under every policy on the IBM-Q20 model, with the mapping decisions and
// failure-hazard breakdown made visible.
//
// Run with: go run ./examples/bernstein_vazirani
package main

import (
	"fmt"
	"log"

	"vaq/internal/calib"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/sim"
	"vaq/internal/workloads"
)

func main() {
	prog := workloads.BV(16)
	fmt.Printf("workload %s: %d qubits, %d instructions — the ancilla entangles with every data qubit\n\n",
		prog.Name, prog.NumQubits, prog.Stats().Total)

	arch := calib.Generate(calib.DefaultQ20Config(2019))
	dev := device.MustNew(arch.Topo, arch.MustMean())

	fmt.Printf("%-10s %6s %6s %9s %9s %9s %8s\n",
		"policy", "swaps", "depth", "gate-haz", "read-haz", "coh-haz", "PST")
	for _, policy := range core.AllPolicies() {
		comp, err := core.Compile(dev, prog, core.Options{Policy: policy, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		if err := comp.Verify(dev); err != nil {
			log.Fatalf("%s: compiled program failed verification: %v", policy, err)
		}
		phys := comp.Routed.Physical
		bd := sim.AnalyticBreakdown(dev, phys, sim.Config{})
		out := sim.Run(dev, phys, sim.Config{Trials: 200000, Seed: 11})
		fmt.Printf("%-10s %6d %6d %9.3f %9.3f %9.3f %8.4f\n",
			policy, comp.Swaps(), phys.Stats().Depth, bd.Gate, bd.Readout, bd.Coherence, out.PST)
	}

	fmt.Println("\nThe star-shaped communication pattern concentrates traffic on the ancilla's links;")
	fmt.Println("VQA places the ancilla on the strongest neighborhood, VQM routes around weak links.")
}
