// Partitioning (Section 8): when a program needs at most half the
// machine, should we run two concurrent copies, or one copy pinned to the
// strongest qubits? This example evaluates both modes for the 10-qubit
// workloads and reports Successful Trials Per unit Time.
//
// Run with: go run ./examples/partitioning
package main

import (
	"fmt"
	"log"

	"vaq/internal/calib"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/partition"
	"vaq/internal/sim"
	"vaq/internal/workloads"
)

func main() {
	arch := calib.Generate(calib.DefaultQ20Config(2019))
	dev := device.MustNew(arch.Topo, arch.MustMean())

	opts := partition.Options{
		Compile:    core.Options{Policy: core.VQAVQM},
		Sim:        sim.Config{Trials: 50000, Seed: 5},
		Candidates: 10,
	}

	fmt.Printf("%-8s %12s %12s %12s %12s  %s\n",
		"workload", "1-copy PST", "2-copy PSTs", "1-copy STPT", "2-copy STPT", "winner")
	for _, spec := range workloads.TenQubitSuite() {
		res, err := partition.Evaluate(dev, spec.Circuit, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.4f %6.4f/%5.4f %12.0f %12.0f  %s\n",
			spec.Name, res.One.PST, res.Two[0].PST, res.Two[1].PST,
			res.OneSTPT, res.TwoSTPT, res.Winner)
	}
	fmt.Println("\nSTPT = successful trials per second. Two copies double the trial rate but one")
	fmt.Println("copy is stuck with the weaker half of the chip; for SWAP-heavy workloads one")
	fmt.Println("strong copy can win outright.")
}
