// Daily recalibration: NISQ machines are re-characterized every day, and
// the paper argues programs should be recompiled against the latest data
// (Section 6.5 / Figure 14). This example recompiles bv-16 against each
// day of a synthetic 52-day archive and shows how the benefit of the
// variation-aware policies tracks the day's error variation.
//
// Run with: go run ./examples/daily_recalibration
package main

import (
	"fmt"
	"log"
	"strings"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/metrics"
	"vaq/internal/sim"
	"vaq/internal/workloads"
)

func main() {
	arch := calib.Generate(calib.DefaultQ20Config(2019))
	prog := workloads.BV(16)

	fmt.Println("day  link-CoV  baseline-PST  vqa+vqm-PST  benefit")
	var benefits []float64
	const shownDays = 14 // print a fortnight; the average uses all days
	for day := 0; day < arch.Days(); day++ {
		snap := arch.DaySnapshots(day)[0]
		dev, err := device.New(arch.Topo, snap)
		if err != nil {
			log.Fatal(err)
		}
		base := pst(dev, prog, core.Baseline)
		full := pst(dev, prog, core.VQAVQM)
		benefit := metrics.Relative(full, base)
		benefits = append(benefits, benefit)
		if day < shownDays {
			rates := snap.LinkRates()
			sum := calib.Summarize(rates)
			cov := sum.Std / sum.Mean
			bar := strings.Repeat("#", int(benefit*10))
			fmt.Printf("%3d  %8.2f  %12.4f  %11.4f  %.2fx %s\n", day+1, cov, base, full, benefit, bar)
		}
	}
	fmt.Printf("...\naverage benefit across %d days: %.2fx\n", len(benefits), metrics.Mean(benefits))
	fmt.Println("high-variation days benefit the most; recompiling per calibration keeps the win.")
}

func pst(dev *device.Device, prog *circuit.Circuit, policy core.Policy) float64 {
	comp, err := core.Compile(dev, prog, core.Options{Policy: policy, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	return sim.Run(dev, comp.Routed.Physical, sim.Config{Trials: 50000, Seed: 9}).PST
}
