// Output log analysis: the paper's Figure 4 execution model, end to end.
// A NISQ program is run thousands of times on the noisy machine; each
// trial's measured bitstring goes into a log, and the correct answer is
// inferred from the log even though most trials may be corrupted. This
// example compiles bv-4 and GHZ-3 onto the IBM-Q5 model under the
// baseline and VQA+VQM policies and compares the resulting logs.
//
// Run with: go run ./examples/output_log
package main

import (
	"fmt"
	"log"

	"vaq/internal/calib"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/trials"
	"vaq/internal/workloads"
)

func main() {
	snap := calib.TenerifeSnapshot()
	dev := device.MustNew(snap.Topo, snap)
	worstLink, worstErr := snap.WeakestLink()
	fmt.Printf("machine %s: mean 2Q error %.1f%%, worst link %.0f%% (Q%d-Q%d)\n\n",
		dev.Topology().Name, 100*mean(snap.LinkRates()), 100*worstErr, worstLink.A, worstLink.B)

	for _, spec := range []struct{ name string }{{"bv-4"}, {"GHZ-3"}, {"TriSwap"}} {
		var prog = workloads.BV(4)
		switch spec.name {
		case "GHZ-3":
			prog = workloads.GHZ(3)
		case "TriSwap":
			prog = workloads.TriSwap()
		}
		fmt.Printf("== %s ==\n", spec.name)
		for _, policy := range []core.Policy{core.Baseline, core.VQAVQM} {
			comp, err := core.Compile(dev, prog, core.Options{Policy: policy})
			if err != nil {
				log.Fatal(err)
			}
			res, err := trials.Run(dev, comp.Routed.Physical, trials.Config{Trials: 4096, Seed: 7})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%s]\n%s", policy, res.Summary())
		}
		fmt.Println()
	}
	fmt.Println("* marks outputs the noise-free program can produce; PST is their share of trials.")
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
