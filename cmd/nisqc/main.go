// Command nisqc compiles a NISQ program onto a simulated IBM machine under
// one of the paper's policies and reports SWAP counts, depth, duration,
// and reliability (analytic PST plus a Monte-Carlo cross-check).
//
// Usage:
//
//	nisqc -workload bv-16 -policy vqa+vqm
//	nisqc -qasm program.qasm -device q5 -policy baseline -verbose
//
// Workload names: alu, bv-N, qft-N, rnd-SD, rnd-LD, ghz-N, triswap.
// Policies: native, baseline, vqm, vqm-hop, vqa+vqm.
// Devices: q20 (IBM-Q20 model, default), q5 (IBM-Q5 model).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/cliutil"
	"vaq/internal/device"
	"vaq/internal/qasm"
	"vaq/internal/schedule"
	"vaq/internal/serve"
	"vaq/internal/trials"
	"vaq/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "built-in workload name (e.g. bv-16, qft-12, alu)")
		qasmPath = flag.String("qasm", "", "path to an OpenQASM 2.0 program (alternative to -workload)")
		policyN  = flag.String("policy", "vqa+vqm", "compilation policy: native, baseline, vqm, vqm-hop, vqa+vqm")
		deviceN  = flag.String("device", "q20", "device model: q20, q16 or q5")
		calibP   = flag.String("calib", "", "load the device from a calgen-produced JSON archive (mean snapshot) instead of -device")
		seed     = flag.Int64("seed", 2019, "seed for the synthetic calibration archive")
		trials   = flag.Int("trials", 100000, "Monte-Carlo trials")
		workers  = flag.Int("workers", 0, "worker goroutines for Monte-Carlo trial sharding (0: one per CPU, <0: serial); the outcome is identical at any setting")
		verbose  = flag.Bool("verbose", false, "print the compiled physical circuit as QASM")
		outcomes = flag.Bool("outcomes", false, "run the iterative execution model and print the output log analysis (Clifford programs only)")
		optimize = flag.Bool("O", false, "run the transpile optimizer (inverse cancellation, rotation merging) before mapping")
		timeline = flag.Bool("timeline", false, "print the ASAP schedule as an ASCII Gantt chart")
	)
	flag.Parse()

	if err := cliutil.All(
		cliutil.Trials("trials", *trials),
		cliutil.Workers("workers", *workers),
	); err != nil {
		fmt.Fprintln(os.Stderr, "nisqc:", err)
		os.Exit(2)
	}

	if *timeline {
		timelineRequested = true
	}
	simWorkers = *workers
	if err := run(*workload, *qasmPath, *policyN, *deviceN, *calibP, *seed, *trials, *verbose, *outcomes, *optimize); err != nil {
		fmt.Fprintln(os.Stderr, "nisqc:", err)
		os.Exit(1)
	}
}

func run(workload, qasmPath, policyName, deviceName, calibPath string, seed int64, mcTrials int, verbose, outcomes, optimize bool) error {
	prog, err := loadProgram(workload, qasmPath)
	if err != nil {
		return err
	}

	var d *device.Device
	if calibPath != "" {
		f, err := os.Open(calibPath)
		if err != nil {
			return err
		}
		defer f.Close()
		arch, quarantined, err := calib.ReadJSONLenient(f)
		if err != nil {
			return err
		}
		for _, q := range quarantined {
			fmt.Fprintln(os.Stderr, "nisqc: quarantined", q)
		}
		mean, err := arch.Mean()
		if err != nil {
			return err
		}
		d, err = device.New(arch.Topo, mean)
		if err != nil {
			return err
		}
		return compileAndReport(d, prog, policyName, seed, mcTrials, verbose, outcomes, optimize)
	}
	switch deviceName {
	case "q20":
		arch := calib.Generate(calib.DefaultQ20Config(seed))
		d = device.MustNew(arch.Topo, arch.MustMean())
	case "q16":
		arch := calib.Generate(calib.DefaultQ16Config(seed))
		d = device.MustNew(arch.Topo, arch.MustMean())
	case "q5":
		s := calib.TenerifeSnapshot()
		d = device.MustNew(s.Topo, s)
	default:
		return fmt.Errorf("unknown device %q (want q20, q16 or q5)", deviceName)
	}
	return compileAndReport(d, prog, policyName, seed, mcTrials, verbose, outcomes, optimize)
}

// timelineRequested and simWorkers mirror the -timeline and -workers
// flags (kept package-level so the testable run() signature stays stable).
var (
	timelineRequested bool
	simWorkers        int
)

// compileAndReport is the back half of the pipeline once a device model
// exists: compile, verify, simulate, print. The compile-verify-estimate
// work and the report text live in serve.Run, shared with the nisqd
// daemon — the daemon's /v1/compile responses embed the exact string
// printed here, and an equivalence test pins the two byte for byte.
func compileAndReport(d *device.Device, prog *circuit.Circuit, policyName string, seed int64, mcTrials int, verbose, outcomes, optimize bool) error {
	res, err := serve.Run(d, prog, serve.Spec{
		Policy:   policyName,
		Seed:     seed,
		Trials:   mcTrials,
		Workers:  simWorkers,
		Optimize: optimize,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Report)
	phys := res.PhysicalCircuit
	if timelineRequested {
		fmt.Println("\n-- ASAP schedule (u=1q, C=2q, S=swap, M=measure; 100ns/column) --")
		fmt.Print(schedule.ASAP(phys).Timeline(100*time.Nanosecond, 120))
	}
	if outcomes {
		tres, err := trials.Run(d, phys, trials.Config{Trials: 4096, Seed: seed})
		if err != nil {
			return fmt.Errorf("outcome simulation: %w", err)
		}
		fmt.Println("\n-- iterative execution model (4096 trials) --")
		fmt.Print(tres.Summary())
	}
	if verbose {
		fmt.Println("\n-- compiled physical circuit --")
		fmt.Print(qasm.Serialize(phys))
	}
	return nil
}

func loadProgram(workload, qasmPath string) (*circuit.Circuit, error) {
	switch {
	case workload != "" && qasmPath != "":
		return nil, fmt.Errorf("specify either -workload or -qasm, not both")
	case qasmPath != "":
		src, err := os.ReadFile(qasmPath)
		if err != nil {
			return nil, err
		}
		return qasm.Parse(string(src))
	case workload != "":
		return builtin(workload)
	default:
		return nil, fmt.Errorf("specify -workload or -qasm (try -workload bv-16)")
	}
}

// builtin resolves a built-in workload name; the resolution itself
// lives in workloads.ByName, shared with the nisqd daemon.
func builtin(name string) (*circuit.Circuit, error) {
	return workloads.ByName(name)
}
