// Command nisqc compiles a NISQ program onto a simulated IBM machine under
// one of the paper's policies and reports SWAP counts, depth, duration,
// and reliability (analytic PST plus a Monte-Carlo cross-check).
//
// Usage:
//
//	nisqc -workload bv-16 -policy vqa+vqm
//	nisqc -qasm program.qasm -device q5 -policy baseline -verbose
//	nisqc -workload qft-12 -portfolio 2
//	nisqc -ansatz su2-6 -sweep points.json
//
// Workload names: alu, bv-N, qft-N, rnd-SD, rnd-LD, ghz-N, triswap.
// Policies: native, baseline, vqm, vqm-hop, vqa+vqm; -movement overrides
// the routing pass (e.g. -movement sabre for large devices).
// Devices: q20 (IBM-Q20 model, default), q16, q5, or any synthetic zoo
// name like heavy-hex-399-mid (see -list-devices).
//
// -portfolio N switches from single-policy compilation to speculative
// portfolio compilation: every allocation × movement × optimizer
// candidate — over the reference device plus the N most recent
// calibration cycles (0: reference only) — compiles in parallel, is
// ranked by analytic ESP with Monte-Carlo refinement of the leaders,
// and the ranked table is printed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"vaq/internal/ansatz"
	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/cliutil"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/param"
	"vaq/internal/portfolio"
	"vaq/internal/qasm"
	"vaq/internal/route"
	"vaq/internal/schedule"
	"vaq/internal/serve"
	"vaq/internal/topo"
	"vaq/internal/trials"
	"vaq/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "built-in workload name (e.g. bv-16, qft-12, alu)")
		qasmPath = flag.String("qasm", "", "path to an OpenQASM 2.0 program (alternative to -workload)")
		policyN  = flag.String("policy", "vqa+vqm", "compilation policy: native, baseline, vqm, vqm-hop, vqa+vqm")
		deviceN  = flag.String("device", "q20", "device model: q20, q16, q5, or a synthetic zoo name like heavy-hex-399-mid (see -list-devices)")
		movement = flag.String("movement", "", "movement-policy override: "+strings.Join(route.MovementNames(), ", ")+" (default: the policy's own router; sabre scales past ~100 qubits)")
		listDevs = flag.Bool("list-devices", false, "list the built-in device models and synthetic zoo families, then exit")
		calibP   = flag.String("calib", "", "load the device from a calgen-produced JSON archive (mean snapshot) instead of -device")
		seed     = flag.Int64("seed", 2019, "seed for the synthetic calibration archive")
		trials   = flag.Int("trials", 100000, "Monte-Carlo trials")
		workers  = flag.Int("workers", 0, "worker goroutines for Monte-Carlo trial sharding (0: one per CPU, <0: serial); the outcome is identical at any setting")
		verbose  = flag.Bool("verbose", false, "print the compiled physical circuit as QASM")
		outcomes = flag.Bool("outcomes", false, "run the iterative execution model and print the output log analysis (Clifford programs only)")
		optimize = flag.Bool("O", false, "run the transpile optimizer (inverse cancellation, rotation merging) before mapping")
		timeline = flag.Bool("timeline", false, "print the ASAP schedule as an ASCII Gantt chart")
		portfN   = flag.Int("portfolio", -1, "portfolio-compile over the N most recent calibration cycles plus the reference device (0: reference only, <0: off) and print the ranked candidates")
		ansatzN  = flag.String("ansatz", "", "parametric ansatz name (su2-N, qaoa-N): compile the symbolic template once and print the rebindable mapping summary")
		sweepP   = flag.String("sweep", "", "JSON file of parameter points ([[...],[...]]); rebind the compiled template per point and print the sweep table (requires -ansatz or a symbolic -qasm)")
	)
	flag.Parse()

	if *listDevs {
		listDevices(os.Stdout)
		return
	}

	if err := cliutil.All(
		cliutil.Trials("trials", *trials),
		cliutil.Workers("workers", *workers),
	); err != nil {
		fmt.Fprintln(os.Stderr, "nisqc:", err)
		os.Exit(2)
	}

	if *timeline {
		timelineRequested = true
	}
	simWorkers = *workers
	portfolioCycles = *portfN
	movementPolicy = *movement
	ansatzName = *ansatzN
	sweepPath = *sweepP
	if err := run(*workload, *qasmPath, *policyN, *deviceN, *calibP, *seed, *trials, *verbose, *outcomes, *optimize); err != nil {
		fmt.Fprintln(os.Stderr, "nisqc:", err)
		os.Exit(1)
	}
}

// listDevices prints the built-in device models and the synthetic zoo
// families with their size bounds and variance tiers.
func listDevices(w io.Writer) {
	fmt.Fprintln(w, "built-in devices:")
	fmt.Fprintln(w, "  q20  IBM-Q20 (Tokyo) synthetic archive, 20 qubits")
	fmt.Fprintln(w, "  q16  IBM-Q16 (Rüschlikon) synthetic archive, 16 qubits")
	fmt.Fprintln(w, "  q5   IBM-Q5 (Tenerife) published snapshot, 5 qubits")
	fmt.Fprintln(w, "\nsynthetic zoo families (name form <family>-<qubits>[-holes<k>][-<tier>]; -holes<k> knocks out k couplers deterministically):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  family\tqubits\ttiers\tdescription")
	tiers := make([]string, 0, 3)
	for _, t := range calib.Tiers() {
		tiers = append(tiers, string(t))
	}
	for _, f := range topo.Families() {
		fmt.Fprintf(tw, "  %s\t%d–%d\t%s\tdefault mid; %s\n",
			f.Name, f.MinQubits, f.MaxQubits, strings.Join(tiers, "/"), f.Description)
	}
	tw.Flush()
	fmt.Fprintln(w, "\nexamples: -device heavy-hex-399, -device grid-100-high, -device grid-25-holes3-mid")
	fmt.Fprintln(w, "tip: pair large devices with -movement sabre (the A*-based policies are quadratic+)")
}

func run(workload, qasmPath, policyName, deviceName, calibPath string, seed int64, mcTrials int, verbose, outcomes, optimize bool) error {
	if ansatzName != "" || sweepPath != "" {
		d, _, err := loadDevice(deviceName, calibPath, seed)
		if err != nil {
			return err
		}
		return sweepAndReport(d, workload, qasmPath, policyName, seed, optimize)
	}
	prog, err := loadProgram(workload, qasmPath)
	if err != nil {
		return err
	}
	d, arch, err := loadDevice(deviceName, calibPath, seed)
	if err != nil {
		return err
	}
	if portfolioCycles >= 0 {
		return portfolioAndReport(d, arch, prog, seed, mcTrials)
	}
	return compileAndReport(d, prog, policyName, seed, mcTrials, verbose, outcomes, optimize)
}

// loadTemplate resolves the parametric template: the named ansatz or a
// symbolic QASM file.
func loadTemplate(workload, qasmPath string) (*param.ParametricCircuit, string, error) {
	switch {
	case ansatzName != "" && (workload != "" || qasmPath != ""):
		return nil, "", fmt.Errorf("-ansatz replaces -workload/-qasm; specify one template source")
	case ansatzName != "":
		pc, err := ansatz.ByName(ansatzName)
		return pc, ansatzName, err
	case qasmPath != "":
		src, err := os.ReadFile(qasmPath)
		if err != nil {
			return nil, "", err
		}
		pc, err := qasm.ParseParametric(string(src))
		return pc, qasmPath, err
	default:
		return nil, "", fmt.Errorf("-sweep needs a parametric template: -ansatz su2-N/qaoa-N or a symbolic -qasm file")
	}
}

// loadPoints reads a sweep file: a JSON array of parameter vectors.
func loadPoints(path string) ([][]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var points [][]float64
	if err := json.Unmarshal(data, &points); err != nil {
		return nil, fmt.Errorf("sweep file %s: want a JSON array of number arrays: %v", path, err)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep file %s has no points", path)
	}
	return points, nil
}

// sweepAndReport is the parametric pipeline: compile the symbolic
// template once (allocation, routing and the success estimate are
// angle-independent), then rebind per sweep point — no recompilation
// anywhere in the loop.
func sweepAndReport(d *device.Device, workload, qasmPath, policyName string, seed int64, optimize bool) error {
	if optimize {
		return fmt.Errorf("-O folds angles and cannot be combined with a parametric template")
	}
	pc, label, err := loadTemplate(workload, qasmPath)
	if err != nil {
		return err
	}
	policy, ok := core.PolicyByName(policyName)
	if !ok {
		return fmt.Errorf("unknown policy %q", policyName)
	}
	bound, err := core.CompileParametric(d, pc, core.Options{
		Policy:   policy,
		Seed:     seed,
		Movement: movementPolicy,
	})
	if err != nil {
		return err
	}
	stats := bound.Compiled.Routed.Physical.Stats()
	syms := make([]string, len(bound.Symbols()))
	for i, s := range bound.Symbols() {
		syms[i] = string(s)
	}
	fmt.Printf("parametric  %s on %s (policy %s)\n", label, d.Topology().Name, policyName)
	fmt.Printf("params      %d free symbols: %s\n", bound.NumParams(), strings.Join(syms, " "))
	fmt.Printf("mapping     %d inst, %d CNOTs, depth %d (fixed across all bindings)\n",
		stats.Total, stats.CNOTs, stats.Depth)
	fmt.Printf("analytic PST %.4f (angle-independent: shared by every sweep point)\n", bound.ESP)
	if sweepPath == "" {
		return nil
	}

	points, err := loadPoints(sweepPath)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "point\tvalues\tphysical fingerprint")
	for i, vals := range points {
		phys, err := bound.RebindValues(vals)
		if err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
		h := fnv.New64a()
		h.Write([]byte(qasm.Serialize(phys)))
		fmt.Fprintf(tw, "%d\t%s\t%016x\n", i, formatPoint(vals), h.Sum64())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("sweep       %d points, 1 compile, %d compiles saved\n", len(points), len(points)-1)
	return nil
}

// formatPoint renders a parameter vector compactly (long vectors are
// elided; the fingerprint identifies the full binding).
func formatPoint(vals []float64) string {
	const maxShown = 4
	parts := make([]string, 0, maxShown+1)
	for i, v := range vals {
		if i == maxShown {
			parts = append(parts, fmt.Sprintf("… +%d", len(vals)-maxShown))
			break
		}
		parts = append(parts, fmt.Sprintf("%.3g", v))
	}
	return strings.Join(parts, " ")
}

// loadDevice resolves -device/-calib into the device model plus its
// calibration archive (the mean snapshot backs the device; the full
// archive feeds -portfolio's calibration-cycle window).
func loadDevice(deviceName, calibPath string, seed int64) (*device.Device, *calib.Archive, error) {
	if calibPath != "" {
		f, err := os.Open(calibPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		arch, quarantined, err := calib.ReadJSONLenient(f)
		if err != nil {
			return nil, nil, err
		}
		for _, q := range quarantined {
			fmt.Fprintln(os.Stderr, "nisqc: quarantined", q)
		}
		mean, err := arch.Mean()
		if err != nil {
			return nil, nil, err
		}
		d, err := device.New(arch.Topo, mean)
		if err != nil {
			return nil, nil, err
		}
		return d, arch, nil
	}
	switch deviceName {
	case "q20":
		arch := calib.Generate(calib.DefaultQ20Config(seed))
		return device.MustNew(arch.Topo, arch.MustMean()), arch, nil
	case "q16":
		arch := calib.Generate(calib.DefaultQ16Config(seed))
		return device.MustNew(arch.Topo, arch.MustMean()), arch, nil
	case "q5":
		s := calib.TenerifeSnapshot()
		arch := &calib.Archive{Topo: s.Topo, Snapshots: []*calib.Snapshot{s}}
		return device.MustNew(s.Topo, s), arch, nil
	}
	// Fall through to the synthetic device zoo: <family>-<n>[-<tier>].
	arch, err := calib.ZooArchive(deviceName, seed)
	if err != nil {
		return nil, nil, fmt.Errorf("unknown device %q (want q20, q16, q5, or a zoo name — see -list-devices): %v", deviceName, err)
	}
	return device.MustNew(arch.Topo, arch.MustMean()), arch, nil
}

// timelineRequested, simWorkers, portfolioCycles, movementPolicy,
// ansatzName and sweepPath mirror the -timeline, -workers, -portfolio,
// -movement, -ansatz and -sweep flags (kept package-level so the
// testable run() signature stays stable).
var (
	timelineRequested bool
	simWorkers        int
	portfolioCycles   = -1
	movementPolicy    string
	ansatzName        string
	sweepPath         string
)

// portfolioAndReport runs the speculative portfolio compiler and prints
// the ranked candidate table.
func portfolioAndReport(d *device.Device, arch *calib.Archive, prog *circuit.Circuit, seed int64, mcTrials int) error {
	cycles := portfolioCycles
	if cycles == 0 {
		cycles = -1 // reference device only
	}
	res, err := portfolio.Run(context.Background(), d, arch, prog, portfolio.Spec{
		RootSeed: seed,
		Cycles:   cycles,
		Trials:   mcTrials,
		Workers:  simWorkers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("portfolio   %s on %s (%d candidates ranked, %d failed, root seed %d)\n",
		prog.Name, d.Topology().Name, len(res.Candidates), len(res.Failures), res.RootSeed)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tcandidate\tswaps\tinst\tdepth\tanalytic PST\tMC PST")
	for _, c := range res.Candidates {
		mc := "-"
		if c.MCResult != nil {
			mc = fmt.Sprintf("%.4f ± %.4f", c.MCResult.PST, c.MCResult.StdErr)
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%.4f\t%s\n",
			c.Rank, c.Label(), c.Swaps, c.Instructions, c.Depth, c.AnalyticPST, mc)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, f := range res.Failures {
		fmt.Fprintf(os.Stderr, "nisqc: candidate %s failed: %s\n", f.Label(), f.Reason)
	}
	if best := res.Best(); best != nil {
		fmt.Printf("best        %s (analytic PST %.4f)\n", best.Label(), best.AnalyticPST)
	}
	return nil
}

// compileAndReport is the back half of the pipeline once a device model
// exists: compile, verify, simulate, print. The compile-verify-estimate
// work and the report text live in serve.Run, shared with the nisqd
// daemon — the daemon's /v1/compile responses embed the exact string
// printed here, and an equivalence test pins the two byte for byte.
func compileAndReport(d *device.Device, prog *circuit.Circuit, policyName string, seed int64, mcTrials int, verbose, outcomes, optimize bool) error {
	res, err := serve.Run(d, prog, serve.Spec{
		Policy:   policyName,
		Seed:     seed,
		Trials:   mcTrials,
		Workers:  simWorkers,
		Optimize: optimize,
		Movement: movementPolicy,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Report)
	phys := res.PhysicalCircuit
	if timelineRequested {
		fmt.Println("\n-- ASAP schedule (u=1q, C=2q, S=swap, M=measure; 100ns/column) --")
		fmt.Print(schedule.ASAP(phys).Timeline(100*time.Nanosecond, 120))
	}
	if outcomes {
		tres, err := trials.Run(d, phys, trials.Config{Trials: 4096, Seed: seed})
		if err != nil {
			return fmt.Errorf("outcome simulation: %w", err)
		}
		fmt.Println("\n-- iterative execution model (4096 trials) --")
		fmt.Print(tres.Summary())
	}
	if verbose {
		fmt.Println("\n-- compiled physical circuit --")
		fmt.Print(qasm.Serialize(phys))
	}
	return nil
}

func loadProgram(workload, qasmPath string) (*circuit.Circuit, error) {
	switch {
	case workload != "" && qasmPath != "":
		return nil, fmt.Errorf("specify either -workload or -qasm, not both")
	case qasmPath != "":
		src, err := os.ReadFile(qasmPath)
		if err != nil {
			return nil, err
		}
		return qasm.Parse(string(src))
	case workload != "":
		return builtin(workload)
	default:
		return nil, fmt.Errorf("specify -workload or -qasm (try -workload bv-16)")
	}
}

// builtin resolves a built-in workload name; the resolution itself
// lives in workloads.ByName, shared with the nisqd daemon.
func builtin(name string) (*circuit.Circuit, error) {
	return workloads.ByName(name)
}
