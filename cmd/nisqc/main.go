// Command nisqc compiles a NISQ program onto a simulated IBM machine under
// one of the paper's policies and reports SWAP counts, depth, duration,
// and reliability (analytic PST plus a Monte-Carlo cross-check).
//
// Usage:
//
//	nisqc -workload bv-16 -policy vqa+vqm
//	nisqc -qasm program.qasm -device q5 -policy baseline -verbose
//
// Workload names: alu, bv-N, qft-N, rnd-SD, rnd-LD, ghz-N, triswap.
// Policies: native, baseline, vqm, vqm-hop, vqa+vqm.
// Devices: q20 (IBM-Q20 model, default), q5 (IBM-Q5 model).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/qasm"
	"vaq/internal/schedule"
	"vaq/internal/sim"
	"vaq/internal/trials"
	"vaq/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "built-in workload name (e.g. bv-16, qft-12, alu)")
		qasmPath = flag.String("qasm", "", "path to an OpenQASM 2.0 program (alternative to -workload)")
		policyN  = flag.String("policy", "vqa+vqm", "compilation policy: native, baseline, vqm, vqm-hop, vqa+vqm")
		deviceN  = flag.String("device", "q20", "device model: q20, q16 or q5")
		calibP   = flag.String("calib", "", "load the device from a calgen-produced JSON archive (mean snapshot) instead of -device")
		seed     = flag.Int64("seed", 2019, "seed for the synthetic calibration archive")
		trials   = flag.Int("trials", 100000, "Monte-Carlo trials")
		workers  = flag.Int("workers", 0, "worker goroutines for Monte-Carlo trial sharding (0: one per CPU, <0: serial); the outcome is identical at any setting")
		verbose  = flag.Bool("verbose", false, "print the compiled physical circuit as QASM")
		outcomes = flag.Bool("outcomes", false, "run the iterative execution model and print the output log analysis (Clifford programs only)")
		optimize = flag.Bool("O", false, "run the transpile optimizer (inverse cancellation, rotation merging) before mapping")
		timeline = flag.Bool("timeline", false, "print the ASAP schedule as an ASCII Gantt chart")
	)
	flag.Parse()

	if *timeline {
		timelineRequested = true
	}
	simWorkers = *workers
	if err := run(*workload, *qasmPath, *policyN, *deviceN, *calibP, *seed, *trials, *verbose, *outcomes, *optimize); err != nil {
		fmt.Fprintln(os.Stderr, "nisqc:", err)
		os.Exit(1)
	}
}

func run(workload, qasmPath, policyName, deviceName, calibPath string, seed int64, mcTrials int, verbose, outcomes, optimize bool) error {
	prog, err := loadProgram(workload, qasmPath)
	if err != nil {
		return err
	}

	var d *device.Device
	if calibPath != "" {
		f, err := os.Open(calibPath)
		if err != nil {
			return err
		}
		defer f.Close()
		arch, quarantined, err := calib.ReadJSONLenient(f)
		if err != nil {
			return err
		}
		for _, q := range quarantined {
			fmt.Fprintln(os.Stderr, "nisqc: quarantined", q)
		}
		mean, err := arch.Mean()
		if err != nil {
			return err
		}
		d, err = device.New(arch.Topo, mean)
		if err != nil {
			return err
		}
		return compileAndReport(d, prog, policyName, seed, mcTrials, verbose, outcomes, optimize)
	}
	switch deviceName {
	case "q20":
		arch := calib.Generate(calib.DefaultQ20Config(seed))
		d = device.MustNew(arch.Topo, arch.MustMean())
	case "q16":
		arch := calib.Generate(calib.DefaultQ16Config(seed))
		d = device.MustNew(arch.Topo, arch.MustMean())
	case "q5":
		s := calib.TenerifeSnapshot()
		d = device.MustNew(s.Topo, s)
	default:
		return fmt.Errorf("unknown device %q (want q20, q16 or q5)", deviceName)
	}
	return compileAndReport(d, prog, policyName, seed, mcTrials, verbose, outcomes, optimize)
}

// timelineRequested and simWorkers mirror the -timeline and -workers
// flags (kept package-level so the testable run() signature stays stable).
var (
	timelineRequested bool
	simWorkers        int
)

// compileAndReport is the back half of the pipeline once a device model
// exists: compile, verify, simulate, print.
func compileAndReport(d *device.Device, prog *circuit.Circuit, policyName string, seed int64, mcTrials int, verbose, outcomes, optimize bool) error {
	policy, ok := core.PolicyByName(policyName)
	if !ok {
		return fmt.Errorf("unknown policy %q", policyName)
	}

	comp, err := core.Compile(d, prog, core.Options{Policy: policy, Seed: seed, Optimize: optimize})
	if err != nil {
		return err
	}
	if err := comp.Verify(d); err != nil {
		return fmt.Errorf("internal error: compiled program failed verification: %w", err)
	}

	in := prog.Stats()
	out := comp.Routed.Physical.Stats()
	scfg := sim.Config{Trials: mcTrials, Seed: seed, Workers: simWorkers}
	prep := sim.Prepare(d, comp.Routed.Physical, scfg)
	mc := prep.Run(scfg)
	analytic := prep.AnalyticPST()
	breakdown := sim.AnalyticBreakdown(d, comp.Routed.Physical, scfg)

	fmt.Printf("program     %s (%d qubits, %d instructions, depth %d)\n", prog.Name, prog.NumQubits, in.Total, in.Depth)
	fmt.Printf("device      %s (%d qubits, %d links)\n", d.Topology().Name, d.NumQubits(), d.Topology().NumLinks())
	fmt.Printf("policy      %s (alloc %s, route %s)\n", comp.Policy, comp.Allocator, comp.Router)
	fmt.Printf("mapping     initial %v\n", comp.Routed.Initial)
	fmt.Printf("swaps       %d inserted (physical: %d instructions, %d CNOTs, depth %d)\n",
		comp.Swaps(), out.Total, out.CNOTs, out.Depth)
	fmt.Printf("duration    %v per trial\n", comp.Routed.Physical.Duration())
	fmt.Printf("PST         %.4f analytic, %.4f ± %.4f Monte-Carlo (%d trials)\n",
		analytic, mc.PST, mc.StdErr, mc.Trials)
	fmt.Printf("hazards     gate %.3f, readout %.3f, coherence %.3f\n",
		breakdown.Gate, breakdown.Readout, breakdown.Coherence)
	if timelineRequested {
		fmt.Println("\n-- ASAP schedule (u=1q, C=2q, S=swap, M=measure; 100ns/column) --")
		fmt.Print(schedule.ASAP(comp.Routed.Physical).Timeline(100*time.Nanosecond, 120))
	}
	if outcomes {
		res, err := trials.Run(d, comp.Routed.Physical, trials.Config{Trials: 4096, Seed: seed})
		if err != nil {
			return fmt.Errorf("outcome simulation: %w", err)
		}
		fmt.Println("\n-- iterative execution model (4096 trials) --")
		fmt.Print(res.Summary())
	}
	if verbose {
		fmt.Println("\n-- compiled physical circuit --")
		fmt.Print(qasm.Serialize(comp.Routed.Physical))
	}
	return nil
}

func loadProgram(workload, qasmPath string) (*circuit.Circuit, error) {
	switch {
	case workload != "" && qasmPath != "":
		return nil, fmt.Errorf("specify either -workload or -qasm, not both")
	case qasmPath != "":
		src, err := os.ReadFile(qasmPath)
		if err != nil {
			return nil, err
		}
		return qasm.Parse(string(src))
	case workload != "":
		return builtin(workload)
	default:
		return nil, fmt.Errorf("specify -workload or -qasm (try -workload bv-16)")
	}
}

func builtin(name string) (*circuit.Circuit, error) {
	lower := strings.ToLower(name)
	switch {
	case lower == "alu":
		return workloads.ALU(), nil
	case lower == "triswap":
		return workloads.TriSwap(), nil
	case lower == "rnd-sd":
		return workloads.RandSD(1), nil
	case lower == "rnd-ld":
		return workloads.RandLD(1), nil
	case strings.HasPrefix(lower, "bv-"):
		n, err := strconv.Atoi(lower[3:])
		if err != nil {
			return nil, fmt.Errorf("bad workload %q", name)
		}
		return workloads.BV(n), nil
	case strings.HasPrefix(lower, "qft-"):
		n, err := strconv.Atoi(lower[4:])
		if err != nil {
			return nil, fmt.Errorf("bad workload %q", name)
		}
		return workloads.QFT(n), nil
	case strings.HasPrefix(lower, "ghz-"):
		n, err := strconv.Atoi(lower[4:])
		if err != nil {
			return nil, fmt.Errorf("bad workload %q", name)
		}
		return workloads.GHZ(n), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}
