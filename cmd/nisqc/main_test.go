package main

import (
	"os"
	"path/filepath"
	"testing"
	"vaq/internal/calib"
)

func TestBuiltinWorkloads(t *testing.T) {
	cases := map[string]int{
		"alu": 10, "bv-16": 16, "qft-8": 8, "ghz-4": 4,
		"triswap": 3, "rnd-SD": 20, "rnd-LD": 20, "BV-5": 5, // case-insensitive
	}
	for name, qubits := range cases {
		c, err := builtin(name)
		if err != nil {
			t.Errorf("builtin(%q): %v", name, err)
			continue
		}
		if c.NumQubits != qubits {
			t.Errorf("builtin(%q) qubits = %d, want %d", name, c.NumQubits, qubits)
		}
	}
	for _, bad := range []string{"", "nope", "bv-", "qft-x", "ghz-"} {
		if _, err := builtin(bad); err == nil {
			t.Errorf("builtin(%q) accepted", bad)
		}
	}
}

func TestLoadProgramModes(t *testing.T) {
	if _, err := loadProgram("", ""); err == nil {
		t.Error("empty args accepted")
	}
	if _, err := loadProgram("bv-4", "file.qasm"); err == nil {
		t.Error("both workload and qasm accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "p.qasm")
	src := "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := loadProgram("", path)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 2 || len(c.Gates) != 3 {
		t.Fatalf("parsed program wrong: %d qubits, %d gates", c.NumQubits, len(c.Gates))
	}
	if _, err := loadProgram("", filepath.Join(dir, "missing.qasm")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Full pipeline through every device and a Clifford outcome run.
	for _, dev := range []string{"q20", "q16", "q5"} {
		if err := run("triswap", "", "vqa+vqm", dev, "", 1, 2000, false, false, false); err != nil {
			t.Errorf("triswap on %s: %v", dev, err)
		}
		if err := run("ghz-3", "", "vqa+vqm", dev, "", 1, 5000, false, true, true); err != nil {
			t.Errorf("run on %s: %v", dev, err)
		}
	}
	if err := run("qft-6", "", "baseline", "q20", "", 1, 5000, true, false, true); err != nil {
		t.Errorf("qft run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bv-4", "", "bogus", "q20", "", 1, 100, false, false, false); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := run("bv-4", "", "baseline", "bogus", "", 1, 100, false, false, false); err == nil {
		t.Error("bogus device accepted")
	}
	if err := run("bv-12", "", "baseline", "q5", "", 1, 100, false, false, false); err == nil {
		t.Error("12-qubit program on q5 accepted")
	}
	// Outcome mode on a non-Clifford program must fail cleanly.
	if err := run("qft-4", "", "baseline", "q20", "", 1, 100, false, true, false); err == nil {
		t.Error("outcome mode accepted non-Clifford program")
	}
}

func TestRunWithCalibArchive(t *testing.T) {
	// calgen json → nisqc -calib round trip through the filesystem.
	dir := t.TempDir()
	path := filepath.Join(dir, "arch.json")
	arch := calib.Generate(calib.DefaultQ5Config(4))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("ghz-3", "", "vqa+vqm", "", path, 1, 2000, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run("ghz-3", "", "baseline", "", filepath.Join(dir, "missing.json"), 1, 100, false, false, false); err == nil {
		t.Fatal("missing calib file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if err := run("ghz-3", "", "baseline", "", bad, 1, 100, false, false, false); err == nil {
		t.Fatal("corrupt calib file accepted")
	}
}

func TestTimelineFlag(t *testing.T) {
	timelineRequested = true
	defer func() { timelineRequested = false }()
	if err := run("ghz-3", "", "baseline", "q5", "", 1, 1000, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestSweepFlag(t *testing.T) {
	dir := t.TempDir()
	pts := filepath.Join(dir, "pts.json")
	if err := os.WriteFile(pts, []byte("[[0.1,0.2],[0.3,0.4]]"), 0o644); err != nil {
		t.Fatal(err)
	}
	ansatzName, sweepPath = "qaoa-4", pts
	defer func() { ansatzName, sweepPath = "", "" }()
	if err := run("", "", "vqa+vqm", "q20", "", 1, 100, false, false, false); err != nil {
		t.Fatal(err)
	}
	// Template summary alone (no sweep file).
	sweepPath = ""
	if err := run("", "", "vqm", "q20", "", 1, 100, false, false, false); err != nil {
		t.Fatal(err)
	}
	// Symbolic QASM file as the template source.
	ansatzName = ""
	qasmFile := filepath.Join(dir, "vqa.qasm")
	src := "qreg q[2]; creg c[2]; ry(theta) q[0]; cx q[0],q[1]; measure q[0] -> c[0];"
	if err := os.WriteFile(qasmFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	sweepPath = pts
	// Arity mismatch: the template has 1 symbol, the points carry 2.
	if err := run("", qasmFile, "vqm", "q20", "", 1, 100, false, false, false); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	one := filepath.Join(dir, "one.json")
	os.WriteFile(one, []byte("[[0.25],[0.5]]"), 0o644)
	sweepPath = one
	if err := run("", qasmFile, "vqm", "q20", "", 1, 100, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestSweepFlagErrors(t *testing.T) {
	defer func() { ansatzName, sweepPath = "", "" }()
	// -sweep with no template source.
	ansatzName, sweepPath = "", "/nonexistent.json"
	if err := run("", "", "vqm", "q20", "", 1, 100, false, false, false); err == nil {
		t.Error("sweep without template accepted")
	}
	// -ansatz beside -workload.
	ansatzName = "qaoa-4"
	if err := run("bv-4", "", "vqm", "q20", "", 1, 100, false, false, false); err == nil {
		t.Error("-ansatz plus -workload accepted")
	}
	// -O is incompatible with parametric compilation.
	if err := run("", "", "vqm", "q20", "", 1, 100, false, false, true); err == nil {
		t.Error("-O accepted with -ansatz")
	}
	// Unknown ansatz and bad sweep files fail cleanly.
	ansatzName, sweepPath = "zap-9", ""
	if err := run("", "", "vqm", "q20", "", 1, 100, false, false, false); err == nil {
		t.Error("unknown ansatz accepted")
	}
}
