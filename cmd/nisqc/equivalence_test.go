package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"vaq/internal/serve"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	return string(out)
}

// TestDaemonMatchesCLI is the service's core contract: for the same
// (workload, policy, seed, trials, device), the report embedded in a
// nisqd /v1/compile response is bit-identical to what the nisqc CLI
// prints. Both sides share serve.Run, and this test pins that neither
// drifts.
func TestDaemonMatchesCLI(t *testing.T) {
	const seed = 2019
	cases := []struct {
		workload, policy, dev string
		trials                int
	}{
		{"bv-8", "vqm", "q20", 20000},
		{"qft-4", "baseline", "q16", 5000},
		{"ghz-3", "vqa+vqm", "q5", 4000},
		{"alu", "native", "q20", 3000},
	}

	srv := serve.MustNew(serve.Config{Seed: seed, MaxTrials: 1000000})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range cases {
		t.Run(tc.workload+"/"+tc.policy+"/"+tc.dev, func(t *testing.T) {
			cliOut := captureStdout(t, func() error {
				return run(tc.workload, "", tc.policy, tc.dev, "", seed, tc.trials, false, false, false)
			})

			body := fmt.Sprintf(`{"workload":%q,"policy":%q,"device":%q,"seed":%d,"trials":%d,"monte_carlo":true}`,
				tc.workload, tc.policy, tc.dev, seed, tc.trials)
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("daemon: status %d: %s", resp.StatusCode, data)
			}
			var res struct {
				Report string `json:"report"`
			}
			if err := json.Unmarshal(data, &res); err != nil {
				t.Fatalf("daemon response: %v", err)
			}
			if res.Report != cliOut {
				t.Errorf("daemon report differs from CLI output\n--- daemon ---\n%s--- cli ---\n%s", res.Report, cliOut)
			}
		})
	}
}
