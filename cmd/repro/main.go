// Command repro regenerates every table and figure of the paper's
// evaluation and prints them in order. Use -experiment to run one, -full
// for the paper's 1M-trial budget, -seed to vary the synthetic
// characterization archive, and -format csv/json for machine-readable
// output.
//
// Usage:
//
//	repro [-experiment all|fig5|fig6|fig7|fig8|fig9|table1|fig12|fig13|fig14|table2|table3|fig16]
//	      [-seed N] [-trials N] [-full] [-workers N] [-format text|csv|json]
//	      [-cpuprofile f.pprof] [-memprofile f.pprof]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"vaq/internal/experiments"
	"vaq/internal/report"
)

func main() {
	var (
		which   = flag.String("experiment", "all", "experiment to run (all, fig5..fig16, table1..table3)")
		seed    = flag.Int64("seed", 2019, "seed for the synthetic characterization archive")
		trials  = flag.Int("trials", 200000, "Monte-Carlo trials per PST estimate")
		full    = flag.Bool("full", false, "use the paper's budgets (1M trials, 32 native configs)")
		workers = flag.Int("workers", 0, "worker goroutines for experiment fan-out and trial sharding (0: one per CPU, <0: serial); results are identical at any setting")
		format  = flag.String("format", "text", "output format: text (tables+charts), csv, json")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Trials: *trials, Workers: *workers}
	if *full {
		cfg.Trials = 1000000
		cfg.NativeConfigs = 32
		cfg.NativeTrials = 10000
		cfg.Q5Trials = 4096
	}

	var cpuFile *os.File
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		cpuFile = f
	}

	err := runFormat(*which, cfg, *format)

	// Flush profiles before any error exit (os.Exit skips defers).
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
	}

	if *memProf != "" {
		f, mErr := os.Create(*memProf)
		if mErr != nil {
			fmt.Fprintln(os.Stderr, "repro:", mErr)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile reflects retained memory
		if mErr := pprof.WriteHeapProfile(f); mErr != nil {
			fmt.Fprintln(os.Stderr, "repro:", mErr)
			os.Exit(1)
		}
		f.Close()
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

// run keeps the text-mode entry point used by tests.
func run(which string, cfg experiments.Config) error { return runFormat(which, cfg, "text") }

// rendering is one experiment's output: the paper-style table plus an
// optional ASCII chart for text mode.
type rendering struct {
	table experiments.Table
	chart string
}

func runFormat(which string, cfg experiments.Config, format string) error {
	switch format {
	case "text", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want text, csv or json)", format)
	}

	type experiment struct {
		name string
		fn   func(experiments.Config) (rendering, error)
	}
	all := []experiment{
		{"fig5", func(c experiments.Config) (rendering, error) {
			return rendering{table: experiments.Fig5CoherenceDistributions(c).Table()}, nil
		}},
		{"fig6", func(c experiments.Config) (rendering, error) {
			return rendering{table: experiments.Fig6SingleQubitErrors(c).Table()}, nil
		}},
		{"fig7", func(c experiments.Config) (rendering, error) {
			return rendering{table: experiments.Fig7TwoQubitErrors(c).Table()}, nil
		}},
		{"fig8", func(c experiments.Config) (rendering, error) {
			r := experiments.Fig8TemporalVariation(c)
			chart := ""
			for _, l := range r.Links {
				chart += fmt.Sprintf("%-8s %s\n", l.Name, report.Sparkline(l.Series))
			}
			return rendering{table: r.Table(), chart: chart}, nil
		}},
		{"fig9", func(c experiments.Config) (rendering, error) {
			r := experiments.Fig9SpatialVariation(c)
			return rendering{table: r.Table(), chart: r.Layout()}, nil
		}},
		{"table1", func(c experiments.Config) (rendering, error) {
			rows, err := experiments.Table1Benchmarks(c)
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.Table1Table(rows)}, nil
		}},
		{"fig12", func(c experiments.Config) (rendering, error) {
			rows, err := experiments.Fig12VQM(c)
			if err != nil {
				return rendering{}, err
			}
			labels := make([]string, len(rows))
			vals := make([]float64, len(rows))
			for i, r := range rows {
				labels[i], vals[i] = r.Name, r.RelVQM
			}
			chart := report.Bars("relative PST, VQM vs baseline (| = 1.0x)", labels, vals, 50, 1)
			return rendering{table: experiments.Fig12Table(rows), chart: chart}, nil
		}},
		{"fig13", func(c experiments.Config) (rendering, error) {
			rows, err := experiments.Fig13Policies(c)
			if err != nil {
				return rendering{}, err
			}
			labels := make([]string, len(rows))
			vals := make([]float64, len(rows))
			for i, r := range rows {
				labels[i], vals[i] = r.Name, r.RelVQAVQM
			}
			chart := report.Bars("relative PST, VQA+VQM vs baseline (| = 1.0x)", labels, vals, 50, 1)
			return rendering{table: experiments.Fig13Table(rows), chart: chart}, nil
		}},
		{"fig14", func(c experiments.Config) (rendering, error) {
			res, err := experiments.Fig14PerDay(c)
			if err != nil {
				return rendering{}, err
			}
			series := make([]float64, len(res.Points))
			for i, p := range res.Points {
				series[i] = p.Relative
			}
			chart := "per-day relative PST (day 1 → 52): " + report.Sparkline(series) + "\n"
			return rendering{table: experiments.Fig14Table(res), chart: chart}, nil
		}},
		{"table2", func(c experiments.Config) (rendering, error) {
			rows, err := experiments.Table2ErrorScaling(c)
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.Table2Table(rows)}, nil
		}},
		{"table3", func(c experiments.Config) (rendering, error) {
			res, err := experiments.Table3IBMQ5(c)
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.Table3Table(res)}, nil
		}},
		{"fig16", func(c experiments.Config) (rendering, error) {
			rows, err := experiments.Fig16Partitioning(c)
			if err != nil {
				return rendering{}, err
			}
			labels := make([]string, len(rows))
			vals := make([]float64, len(rows))
			for i, r := range rows {
				labels[i], vals[i] = r.Name, r.OneStrongNorm
			}
			chart := report.Bars("one-strong-copy STPT, normalized to two copies (| = parity)", labels, vals, 50, 1)
			return rendering{table: experiments.Fig16Table(rows), chart: chart}, nil
		}},
		{"ext-mah", func(c experiments.Config) (rendering, error) {
			rows, err := experiments.ExtMAHSweep(c)
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.ExtMAHTable(rows)}, nil
		}},
		{"ext-readout", func(c experiments.Config) (rendering, error) {
			rows, err := experiments.ExtReadoutAware(c)
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.ExtReadoutTable(rows)}, nil
		}},
		{"ext-optimizer", func(c experiments.Config) (rendering, error) {
			rows, err := experiments.ExtOptimizer(c)
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.ExtOptimizerTable(rows)}, nil
		}},
		{"ext-topology", func(c experiments.Config) (rendering, error) {
			rows, err := experiments.ExtTopology(c)
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.ExtTopologyTable(rows)}, nil
		}},
		{"ext-qv", func(c experiments.Config) (rendering, error) {
			res, err := experiments.ExtQuantumVolume(c)
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.ExtQVTable(res)}, nil
		}},
	}

	ran := false
	for _, e := range all {
		if which != "all" && which != e.name {
			continue
		}
		ran = true
		r, err := e.fn(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		switch format {
		case "text":
			fmt.Println(r.table.String())
			if r.chart != "" {
				fmt.Println(r.chart)
			}
		case "csv":
			if err := report.WriteCSV(os.Stdout, r.table.Header, r.table.Rows); err != nil {
				return err
			}
		case "json":
			if err := report.WriteJSON(os.Stdout, r.table); err != nil {
				return err
			}
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
