// Command repro regenerates every table and figure of the paper's
// evaluation and prints them in order. Use -experiment to run one, -full
// for the paper's 1M-trial budget, -seed to vary the synthetic
// characterization archive, and -format csv/json for machine-readable
// output.
//
// The harness is fault-isolated, cancellable, and resumable: each
// experiment is decomposed into units (one workload row, one day, one
// configuration), a failing or panicking unit is quarantined into a
// failure report while its siblings keep running, SIGINT/SIGTERM or
// -timeout stop the run cleanly after the in-flight units finish, and
// -checkpoint/-resume persist completed units so an interrupted sweep
// picks up where it left off with bit-identical results.
//
// Usage:
//
//	repro [-experiment all|fig5|fig6|fig7|fig8|fig9|table1|fig12|fig13|fig14|table2|table3|portfolio|fig16|scale|qvtime|vqa]
//	      [-seed N] [-trials N] [-full] [-workers N] [-format text|csv|json]
//	      [-checkpoint dir] [-resume] [-timeout 10m] [-calib archive.json]
//	      [-cpuprofile f.pprof] [-memprofile f.pprof]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"syscall"

	"vaq/internal/calib"
	"vaq/internal/checkpoint"
	"vaq/internal/cliutil"
	"vaq/internal/experiments"
	"vaq/internal/parallel"
	"vaq/internal/report"
	"vaq/internal/sim"
)

func main() {
	var (
		which    = flag.String("experiment", "all", "experiment to run (all, fig5..fig16, table1..table3, ext-*, scale, qvtime, vqa)")
		seed     = flag.Int64("seed", 2019, "seed for the synthetic characterization archive")
		trials   = flag.Int("trials", 200000, "Monte-Carlo trials per PST estimate")
		full     = flag.Bool("full", false, "use the paper's budgets (1M trials, 32 native configs); an explicit -trials wins")
		workers  = flag.Int("workers", 0, "worker goroutines for experiment fan-out and trial sharding (0: one per CPU, <0: serial); results are identical at any setting")
		format   = flag.String("format", "text", "output format: text (tables+charts), csv, json")
		ckDir    = flag.String("checkpoint", "", "directory for per-unit result checkpoints (written atomically)")
		resume   = flag.Bool("resume", false, "serve completed units from the -checkpoint directory instead of recomputing them")
		timeout  = flag.Duration("timeout", 0, "cancel the run after this duration (0: no limit); completed units are kept")
		calibP   = flag.String("calib", "", "replace the synthetic archive with a calgen-style JSON archive (invalid cycles are quarantined)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		kernel   = flag.String("kernel", "", "Monte-Carlo kernel: packed (bit-parallel, default) or scalar (reference)")
	)
	flag.Parse()

	if err := cliutil.All(
		cliutil.Trials("trials", *trials),
		cliutil.Workers("workers", *workers),
		cliutil.Timeout("timeout", *timeout),
	); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}
	if !sim.ValidKernel(*kernel) {
		fmt.Fprintf(os.Stderr, "repro: -kernel must be %q or %q (got %q)\n",
			sim.KernelPacked, sim.KernelScalar, *kernel)
		os.Exit(2)
	}

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	cfg := experiments.Config{Seed: *seed, Trials: *trials, Workers: *workers, Kernel: *kernel}
	cfg = applyFullBudget(cfg, *full, explicit)

	if *resume && *ckDir == "" {
		fmt.Fprintln(os.Stderr, "repro: -resume requires -checkpoint")
		os.Exit(2)
	}
	var store *checkpoint.Store
	if *ckDir != "" {
		var err error
		store, err = checkpoint.Open(*ckDir, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	}
	if *calibP != "" {
		arch, err := loadCalibArchive(*calibP, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		cfg.Archive = arch
	}

	// SIGINT/SIGTERM cancel the context: in-flight units finish, their
	// results are checkpointed, the surviving tables and the failure
	// report are printed, and the exit status is non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var cpuFile *os.File
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		cpuFile = f
	}

	runner := experiments.NewRunner(ctx, cfg, store)
	err := runList(os.Stdout, runner, experimentList(), *which, *format)

	// Flush profiles before any error exit (os.Exit skips defers).
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
	}
	if *memProf != "" {
		f, mErr := os.Create(*memProf)
		if mErr != nil {
			fmt.Fprintln(os.Stderr, "repro:", mErr)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile reflects retained memory
		if mErr := pprof.WriteHeapProfile(f); mErr != nil {
			fmt.Fprintln(os.Stderr, "repro:", mErr)
			os.Exit(1)
		}
		f.Close()
	}

	if store != nil {
		hits, misses, puts, corrupt := store.Stats()
		fmt.Fprintf(os.Stderr, "repro: checkpoint: %d served, %d missed, %d written, %d corrupt\n",
			hits, misses, puts, corrupt)
	}
	code := 0
	if rep := runner.Report(); !rep.Empty() {
		fmt.Fprint(os.Stderr, rep.String())
		code = 1
	}
	if cerr := ctx.Err(); cerr != nil {
		fmt.Fprintf(os.Stderr, "repro: run cut short (%v); completed units above, rerun with -resume to continue\n", cerr)
		code = 1
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		code = 1
	}
	os.Exit(code)
}

// applyFullBudget upgrades cfg to the paper's budgets without stomping
// flags the user set explicitly: -full used to silently overwrite an
// explicit -trials, so `repro -full -trials 50000` ran 1M trials.
func applyFullBudget(cfg experiments.Config, full bool, explicit map[string]bool) experiments.Config {
	if !full {
		return cfg
	}
	if !explicit["trials"] {
		cfg.Trials = 1000000
	}
	cfg.NativeConfigs = 32
	cfg.NativeTrials = 10000
	cfg.Q5Trials = 4096
	return cfg
}

// loadCalibArchive reads a calgen-style JSON archive leniently: invalid
// cycles are quarantined (reported to w) instead of failing the run, and
// the surviving archive drives every IBM-Q20 experiment.
func loadCalibArchive(path string, w io.Writer) (*calib.Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	arch, quarantined, err := calib.ReadJSONLenient(f)
	if err != nil {
		return nil, err
	}
	for _, q := range quarantined {
		fmt.Fprintf(w, "repro: calib: quarantined %v\n", q)
	}
	return arch, nil
}

// run keeps the text-mode entry point used by tests.
func run(which string, cfg experiments.Config) error {
	return runFormat(which, cfg, "text")
}

// runFormat keeps the pre-harness entry point: background context, no
// checkpointing, quarantined units surfaced as an error.
func runFormat(which string, cfg experiments.Config, format string) error {
	runner := experiments.NewRunner(context.Background(), cfg, nil)
	if err := runList(os.Stdout, runner, experimentList(), which, format); err != nil {
		return err
	}
	return runner.Report().Err()
}

// rendering is one experiment's output: the paper-style table plus an
// optional ASCII chart for text mode.
type rendering struct {
	table experiments.Table
	chart string
}

// experiment is one runnable entry of the suite. fn returns whatever
// rows survived quarantine; err is reserved for truncation
// (context cancellation) and hard failures that produced no table.
type experiment struct {
	name string
	fn   func(*experiments.Runner) (rendering, error)
}

func experimentList() []experiment {
	return []experiment{
		{"fig5", func(r *experiments.Runner) (rendering, error) {
			return rendering{table: experiments.Fig5CoherenceDistributions(r.Config()).Table()}, nil
		}},
		{"fig6", func(r *experiments.Runner) (rendering, error) {
			return rendering{table: experiments.Fig6SingleQubitErrors(r.Config()).Table()}, nil
		}},
		{"fig7", func(r *experiments.Runner) (rendering, error) {
			return rendering{table: experiments.Fig7TwoQubitErrors(r.Config()).Table()}, nil
		}},
		{"fig8", func(r *experiments.Runner) (rendering, error) {
			res := experiments.Fig8TemporalVariation(r.Config())
			chart := ""
			for _, l := range res.Links {
				chart += fmt.Sprintf("%-8s %s\n", l.Name, report.Sparkline(l.Series))
			}
			return rendering{table: res.Table(), chart: chart}, nil
		}},
		{"fig9", func(r *experiments.Runner) (rendering, error) {
			res := experiments.Fig9SpatialVariation(r.Config())
			return rendering{table: res.Table(), chart: res.Layout()}, nil
		}},
		{"table1", func(r *experiments.Runner) (rendering, error) {
			rows, err := experiments.Table1BenchmarksCtx(r)
			return rendering{table: experiments.Table1Table(rows)}, err
		}},
		{"fig12", func(r *experiments.Runner) (rendering, error) {
			rows, err := experiments.Fig12VQMCtx(r)
			labels := make([]string, len(rows))
			vals := make([]float64, len(rows))
			for i, row := range rows {
				labels[i], vals[i] = row.Name, row.RelVQM
			}
			chart := report.Bars("relative PST, VQM vs baseline (| = 1.0x)", labels, vals, 50, 1)
			return rendering{table: experiments.Fig12Table(rows), chart: chart}, err
		}},
		{"fig13", func(r *experiments.Runner) (rendering, error) {
			rows, err := experiments.Fig13PoliciesCtx(r)
			labels := make([]string, len(rows))
			vals := make([]float64, len(rows))
			for i, row := range rows {
				labels[i], vals[i] = row.Name, row.RelVQAVQM
			}
			chart := report.Bars("relative PST, VQA+VQM vs baseline (| = 1.0x)", labels, vals, 50, 1)
			return rendering{table: experiments.Fig13Table(rows), chart: chart}, err
		}},
		{"fig14", func(r *experiments.Runner) (rendering, error) {
			res, err := experiments.Fig14PerDayCtx(r)
			series := make([]float64, len(res.Points))
			for i, p := range res.Points {
				series[i] = p.Relative
			}
			chart := "per-day relative PST (day 1 → 52): " + report.Sparkline(series) + "\n"
			return rendering{table: experiments.Fig14Table(res), chart: chart}, err
		}},
		{"table2", func(r *experiments.Runner) (rendering, error) {
			rows, err := experiments.Table2ErrorScalingCtx(r)
			return rendering{table: experiments.Table2Table(rows)}, err
		}},
		{"table3", func(r *experiments.Runner) (rendering, error) {
			res, err := experiments.Table3IBMQ5Ctx(r)
			return rendering{table: experiments.Table3Table(res)}, err
		}},
		{"portfolio", func(r *experiments.Runner) (rendering, error) {
			rows, err := experiments.PortfolioPoliciesCtx(r)
			labels := make([]string, len(rows))
			vals := make([]float64, len(rows))
			for i, row := range rows {
				labels[i], vals[i] = row.Name, row.Headroom
			}
			chart := report.Bars("portfolio PST over best fixed policy (| = parity)", labels, vals, 50, 1)
			return rendering{table: experiments.PortfolioTable(rows), chart: chart}, err
		}},
		{"fig16", func(r *experiments.Runner) (rendering, error) {
			rows, err := experiments.Fig16PartitioningCtx(r)
			labels := make([]string, len(rows))
			vals := make([]float64, len(rows))
			for i, row := range rows {
				labels[i], vals[i] = row.Name, row.OneStrongNorm
			}
			chart := report.Bars("one-strong-copy STPT, normalized to two copies (| = parity)", labels, vals, 50, 1)
			return rendering{table: experiments.Fig16Table(rows), chart: chart}, err
		}},
		{"ext-mah", func(r *experiments.Runner) (rendering, error) {
			rows, err := experiments.ExtMAHSweep(r.Config())
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.ExtMAHTable(rows)}, nil
		}},
		{"ext-readout", func(r *experiments.Runner) (rendering, error) {
			rows, err := experiments.ExtReadoutAware(r.Config())
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.ExtReadoutTable(rows)}, nil
		}},
		{"ext-optimizer", func(r *experiments.Runner) (rendering, error) {
			rows, err := experiments.ExtOptimizer(r.Config())
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.ExtOptimizerTable(rows)}, nil
		}},
		{"ext-topology", func(r *experiments.Runner) (rendering, error) {
			rows, err := experiments.ExtTopology(r.Config())
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.ExtTopologyTable(rows)}, nil
		}},
		{"ext-qv", func(r *experiments.Runner) (rendering, error) {
			res, err := experiments.ExtQuantumVolume(r.Config())
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.ExtQVTable(res)}, nil
		}},
		{"scale", func(r *experiments.Runner) (rendering, error) {
			rows, err := experiments.ScaleSweep(r.Config())
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.ScaleTable(rows)}, nil
		}},
		{"qvtime", func(r *experiments.Runner) (rendering, error) {
			rows, err := experiments.QVTimeSweep(r.Config())
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.QVTimeTable(rows)}, nil
		}},
		{"vqa", func(r *experiments.Runner) (rendering, error) {
			res, err := experiments.VQASweep(r.Config())
			if err != nil {
				return rendering{}, err
			}
			return rendering{table: experiments.VQATable(res)}, nil
		}},
	}
}

// runList runs the selected experiments in order, writing every
// renderable table to w. An experiment that fails or panics whole
// (outside the unit layer) is quarantined into the runner's report and
// the remaining experiments still run — `-experiment all` always emits
// every computable result. Only unknown experiment/format selections and
// write errors are returned.
func runList(w io.Writer, runner *experiments.Runner, list []experiment, which, format string) error {
	switch format {
	case "text", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want text, csv or json)", format)
	}
	ran := false
	for _, e := range list {
		if which != "all" && which != e.name {
			continue
		}
		ran = true
		if runner.Context().Err() != nil && which == "all" {
			// Cancelled: stop starting experiments; already-rendered
			// tables stand.
			continue
		}
		rend, err := runExperiment(runner, e)
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			runner.Quarantine(experiments.UnitKey{Experiment: e.name, Day: -1}, err)
			continue
		}
		// Truncated-but-partial tables still print: a cancelled sweep
		// shows every unit that completed.
		if len(rend.table.Rows) == 0 && err != nil {
			continue
		}
		switch format {
		case "text":
			fmt.Fprintln(w, rend.table.String())
			if rend.chart != "" {
				fmt.Fprintln(w, rend.chart)
			}
		case "csv":
			if werr := report.WriteCSV(w, rend.table.Header, rend.table.Rows); werr != nil {
				return werr
			}
		case "json":
			if werr := report.WriteJSON(w, rend.table); werr != nil {
				return werr
			}
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}

// runExperiment shields one experiment: a panic that escapes the unit
// layer (archive construction, table rendering) is captured with its
// stack instead of killing the whole run.
func runExperiment(runner *experiments.Runner, e experiment) (rend rendering, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &parallel.PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	return e.fn(runner)
}
