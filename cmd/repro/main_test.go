package main

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"vaq/internal/checkpoint"
	"vaq/internal/experiments"
)

func fastCfg() experiments.Config {
	return experiments.Config{
		Seed:          2019,
		Trials:        20000,
		NativeConfigs: 3,
		NativeTrials:  2000,
		Q5Trials:      2048,
	}
}

func TestRunSingleExperiments(t *testing.T) {
	// The cheap experiments run end to end through the CLI path.
	for _, name := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2", "table3"} {
		if err := run(name, fastCfg()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", fastCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunFormats(t *testing.T) {
	for _, format := range []string{"text", "csv", "json"} {
		if err := runFormat("fig9", fastCfg(), format); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
	if err := runFormat("fig9", fastCfg(), "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestApplyFullBudgetRespectsExplicitTrials(t *testing.T) {
	base := experiments.Config{Seed: 1, Trials: 50000}
	got := applyFullBudget(base, true, map[string]bool{"trials": true})
	if got.Trials != 50000 {
		t.Fatalf("-full stomped an explicit -trials: %d", got.Trials)
	}
	if got.NativeConfigs != 32 || got.NativeTrials != 10000 || got.Q5Trials != 4096 {
		t.Fatalf("-full did not apply the paper budgets: %+v", got)
	}
	got = applyFullBudget(base, true, map[string]bool{})
	if got.Trials != 1000000 {
		t.Fatalf("-full without explicit -trials = %d trials, want 1M", got.Trials)
	}
	got = applyFullBudget(base, false, map[string]bool{})
	if got != base {
		t.Fatalf("config changed without -full: %+v", got)
	}
}

// TestInjectedPanicIsolation is the fault-isolation acceptance check: a
// unit that panics mid-suite must not take down the other experiments —
// their tables still render, and the failure report names the failed
// unit with its stack.
func TestInjectedPanicIsolation(t *testing.T) {
	list := []experiment{
		experimentByName(t, "table1"),
		{"boom", func(r *experiments.Runner) (rendering, error) {
			_, _ = experiments.RunUnit(r, experiments.UnitKey{Experiment: "boom", Workload: "w", Day: -1},
				func() (int, error) { panic("injected unit failure") })
			return rendering{}, nil
		}},
		experimentByName(t, "table3"),
	}
	var buf bytes.Buffer
	runner := experiments.NewRunner(context.Background(), fastCfg(), nil)
	if err := runList(&buf, runner, list, "all", "text"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 1: benchmark characteristics") {
		t.Error("table1 output missing")
	}
	if !strings.Contains(out, "Table 3: PST on the IBM-Q5 model") {
		t.Error("table3 (after the panicking experiment) output missing")
	}
	rep := runner.Report()
	if rep.Empty() {
		t.Fatal("panicking unit not quarantined")
	}
	text := rep.String()
	if !strings.Contains(text, "boom/w") || !strings.Contains(text, "injected unit failure") {
		t.Fatalf("report does not name the failed unit:\n%s", text)
	}
	if !strings.Contains(text, "main_test.go") {
		t.Fatalf("report does not carry the panic stack:\n%s", text)
	}
}

// TestExperimentLevelPanicIsolation covers panics that escape the unit
// layer entirely (e.g. archive construction).
func TestExperimentLevelPanicIsolation(t *testing.T) {
	list := []experiment{
		{"explode", func(r *experiments.Runner) (rendering, error) { panic("whole experiment down") }},
		experimentByName(t, "table1"),
	}
	var buf bytes.Buffer
	runner := experiments.NewRunner(context.Background(), fastCfg(), nil)
	if err := runList(&buf, runner, list, "all", "text"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("experiment after the panicking one did not run")
	}
	rep := runner.Report()
	if rep.Empty() || !strings.Contains(rep.String(), "explode") {
		t.Fatalf("experiment-level panic not quarantined: %s", rep.String())
	}
}

// TestKillResumeEquivalence is the resumable-harness acceptance check:
// a fig13 run interrupted mid-flight and resumed from its checkpoint
// produces a byte-identical table to an uninterrupted run.
func TestKillResumeEquivalence(t *testing.T) {
	cfg := fastCfg()
	fig13 := []experiment{experimentByName(t, "fig13")}

	// Reference: uninterrupted, no checkpoint.
	var want bytes.Buffer
	if err := runList(&want, experiments.NewRunner(context.Background(), cfg, nil), fig13, "fig13", "text"); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel (the SIGINT path minus the signal) after two
	// completed units; completed work lands in the checkpoint directory.
	dir := t.TempDir()
	store, err := checkpoint.Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := experiments.NewRunner(ctx, cfg, store)
	var done atomic.Int64
	interrupted.OnUnitDone = func(experiments.UnitKey) {
		if done.Add(1) == 2 {
			cancel()
		}
	}
	var partial bytes.Buffer
	if err := runList(&partial, interrupted, fig13, "fig13", "text"); err != nil {
		t.Fatal(err)
	}
	if !interrupted.Report().Empty() {
		t.Fatalf("interruption quarantined units: %v", interrupted.Report().Err())
	}
	_, _, puts, _ := store.Stats()
	if puts < 2 {
		t.Fatalf("only %d units checkpointed before the kill", puts)
	}

	// Resumed run: fresh context, same config, -resume semantics.
	resumed, err := checkpoint.Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := runList(&got, experiments.NewRunner(context.Background(), cfg, resumed), fig13, "fig13", "text"); err != nil {
		t.Fatal(err)
	}
	hits, _, _, _ := resumed.Stats()
	if hits < 2 {
		t.Fatalf("resume served only %d units from the checkpoint", hits)
	}
	if got.String() != want.String() {
		t.Fatalf("resumed table differs from uninterrupted run:\n-- want --\n%s\n-- got --\n%s", want.String(), got.String())
	}
}

func experimentByName(t *testing.T, name string) experiment {
	t.Helper()
	for _, e := range experimentList() {
		if e.name == name {
			return e
		}
	}
	t.Fatalf("experiment %q not in list", name)
	return experiment{}
}
