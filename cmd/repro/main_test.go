package main

import (
	"testing"

	"vaq/internal/experiments"
)

func fastCfg() experiments.Config {
	return experiments.Config{
		Seed:          2019,
		Trials:        20000,
		NativeConfigs: 3,
		NativeTrials:  2000,
		Q5Trials:      2048,
	}
}

func TestRunSingleExperiments(t *testing.T) {
	// The cheap experiments run end to end through the CLI path.
	for _, name := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2", "table3"} {
		if err := run(name, fastCfg()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", fastCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunFormats(t *testing.T) {
	for _, format := range []string{"text", "csv", "json"} {
		if err := runFormat("fig9", fastCfg(), format); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
	if err := runFormat("fig9", fastCfg(), "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}
