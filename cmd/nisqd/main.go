// Command nisqd is the compile-and-estimate service daemon: a
// stdlib-only HTTP JSON front-end over the repository's hardware-aware
// compilation stack. It centralizes the per-device, per-calibration
// work (routing cost tables, compiled-response caching) behind one warm
// process, the access model real NISQ machines have — users submit
// circuits to a shared device through a service, not a local toolchain.
//
// Endpoints:
//
//	POST /v1/compile      compile a workload/QASM program and estimate its PST
//	POST /v1/estimate     analytic (and optionally Monte-Carlo) PST only
//	POST /v1/batch        fan out many compile requests with per-item fault isolation
//	POST /v1/portfolio    speculatively compile a policy×cycle candidate grid, ranked by ESP
//	POST /v1/calibration  register a calgen-style JSON archive as a new device;
//	                      ?name=D&append=true appends cycles to D's drift store
//	GET  /v1/calibration/{device}  window of stored calibration cycles (?window=K)
//	GET  /v1/drift/{device}        latest drift report (score, alarms, canary deltas);
//	                               /{device}/events streams cycle/drift SSE
//	GET  /v1/devices      list registered device models
//	POST /v1/jobs         submit any of the above as a durable async job
//	GET  /v1/jobs         list jobs; /v1/jobs/{id} polls one, /{id}/result
//	                      fetches its bytes, /{id}/events streams SSE,
//	                      DELETE /v1/jobs/{id} cancels
//	GET  /healthz         liveness probe
//	GET  /metrics         Prometheus text-format counters
//	GET  /debug/pprof/    runtime profiles
//
// The daemon sheds load with 429 beyond -max-inflight concurrent
// requests, applies a per-request deadline, serves repeated requests
// from an LRU response cache, and drains in-flight requests on
// SIGINT/SIGTERM before exiting.
//
// Usage:
//
//	nisqd -addr :8080
//	nisqd -addr 127.0.0.1:9000 -seed 7 -max-inflight 128 -request-timeout 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vaq/internal/cliutil"
	"vaq/internal/jobs"
	"vaq/internal/serve"
	"vaq/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		seed     = flag.Int64("seed", 2019, "seed for the built-in q20/q16 synthetic calibration archives")
		trials   = flag.Int("trials", 1000000, "per-request Monte-Carlo trial cap")
		workers  = flag.Int("workers", 0, "worker goroutines per Monte-Carlo estimate and batch fan-out (0: one per CPU, <0: serial); outcomes are identical at any setting")
		inflight = flag.Int("max-inflight", 64, "concurrent requests before load shedding with 429")
		reqTO    = flag.Duration("request-timeout", 60*time.Second, "per-request deadline (0: no limit)")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
		cacheN   = flag.Int("cache-entries", 512, "LRU response-cache capacity (0: disable)")
		kernel   = flag.String("kernel", "", "Monte-Carlo kernel when a request names none: packed (bit-parallel, default) or scalar (reference)")
		jobsDir  = flag.String("jobs-dir", "", "durable job-queue directory for POST /v1/jobs (empty: jobs are in-memory and do not survive restarts)")
		jobsW    = flag.Int("job-workers", 0, "worker goroutines executing queued jobs (0: one per CPU, <0: serial)")
		driftDir = flag.String("drift-dir", "", "calibration cycle-store directory for the drift plane (empty: cycles are in-memory and do not survive restarts)")
		driftThr = flag.Float64("drift-threshold", 0, "device drift score that triggers a canary recompile (0: detector default)")
		driftWin = flag.Int("drift-window", 0, "calibration cycles per drift-detection window (0: default 8)")
		driftHot = flag.Int("drift-hot", 0, "hot compiled circuits tracked per device as canary targets (0: default 8)")
		driftCD  = flag.Duration("drift-cooldown", 0, "minimum wall-clock spacing between canary recompiles per device (0: no cooldown)")
		driftAd  = flag.Float64("drift-adopt", 0, "canary-predicted PST gain past which stale cached mappings are invalidated (0: default 0.01, <0: adoption off)")
	)
	flag.Parse()

	if err := cliutil.All(
		cliutil.Trials("trials", *trials),
		cliutil.Workers("workers", *workers),
		cliutil.Timeout("request-timeout", *reqTO),
		cliutil.Timeout("drain-timeout", *drainTO),
		cliutil.Positive("max-inflight", *inflight),
		cliutil.NonNegative("cache-entries", *cacheN),
		cliutil.Workers("job-workers", *jobsW),
		cliutil.NonNegative("drift-window", *driftWin),
		cliutil.NonNegative("drift-hot", *driftHot),
		cliutil.Timeout("drift-cooldown", *driftCD),
	); err != nil {
		fmt.Fprintln(os.Stderr, "nisqd:", err)
		os.Exit(2)
	}
	if *driftThr < 0 {
		fmt.Fprintf(os.Stderr, "nisqd: -drift-threshold must be >= 0 (got %v)\n", *driftThr)
		os.Exit(2)
	}
	if !sim.ValidKernel(*kernel) {
		fmt.Fprintf(os.Stderr, "nisqd: -kernel must be %q or %q (got %q)\n",
			sim.KernelPacked, sim.KernelScalar, *kernel)
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		Seed:           *seed,
		MaxTrials:      *trials,
		Workers:        *workers,
		Kernel:         *kernel,
		MaxInFlight:    *inflight,
		RequestTimeout: *reqTO,
		DrainTimeout:   *drainTO,
		CacheEntries:   *cacheN,
		Jobs: jobs.Options{
			Dir:     *jobsDir,
			Workers: *jobsW,
		},
		DriftDir:            *driftDir,
		DriftThreshold:      *driftThr,
		DriftWindow:         *driftWin,
		DriftHotCircuits:    *driftHot,
		DriftCanaryCooldown: *driftCD,
		DriftAdoptDelta:     *driftAd,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nisqd:", err)
		os.Exit(1)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nisqd:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("nisqd: serving on %s (seed %d, max in-flight %d, request timeout %v)",
		l.Addr(), *seed, *inflight, *reqTO)
	if err := srv.Serve(ctx, l); err != nil {
		fmt.Fprintln(os.Stderr, "nisqd:", err)
		os.Exit(1)
	}
	log.Printf("nisqd: drained, exiting")
}
