// Command calgen generates a synthetic device characterization archive
// (the stand-in for the paper's 52-day IBM-Q20 scrape) and writes it as
// CSV or prints summary statistics.
//
// Usage:
//
//	calgen -device q20 -seed 7 -summary
//	calgen -device q20 -format csv > archive.csv
//	calgen -device heavy-hex-399-high -format json > hh399.json
//
// Besides the named IBM models (q20, q16, q5), -device accepts any
// synthetic zoo name of the form <family>-<qubits>[-<tier>]: families
// heavy-hex, grid, ring, full; variance tiers low, mid (default), high.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"vaq/internal/calib"
	"vaq/internal/cliutil"
)

func main() {
	var (
		deviceN = flag.String("device", "q20", "device model: q20, q16, q5, or a zoo name like heavy-hex-399-mid")
		seed    = flag.Int64("seed", 2019, "generator seed")
		days    = flag.Int("days", 0, "override number of observation days")
		format  = flag.String("format", "summary", "output: summary, csv or json (json is loadable by nisqc -calib)")
	)
	flag.Parse()

	if err := cliutil.Days("days", *days); err != nil {
		fmt.Fprintln(os.Stderr, "calgen:", err)
		os.Exit(2)
	}

	if err := run(*deviceN, *seed, *days, *format); err != nil {
		fmt.Fprintln(os.Stderr, "calgen:", err)
		os.Exit(1)
	}
}

func run(deviceN string, seed int64, days int, format string) error {
	var cfg calib.GenConfig
	switch deviceN {
	case "q20":
		cfg = calib.DefaultQ20Config(seed)
	case "q16":
		cfg = calib.DefaultQ16Config(seed)
	case "q5":
		cfg = calib.DefaultQ5Config(seed)
	default:
		// Synthetic zoo device: <family>-<n>[-<tier>]. The tier-scaled
		// config (with its name-folded seed) comes from calib, so calgen
		// output matches the fleet nisqc and nisqd materialize for the
		// same name and seed.
		var err error
		cfg, err = calib.ZooGenConfig(deviceN, seed)
		if err != nil {
			return fmt.Errorf("unknown device %q: %v", deviceN, err)
		}
	}
	if days > 0 {
		cfg.Days = days
	}
	arch := calib.Generate(cfg)

	switch format {
	case "summary":
		return printSummary(arch)
	case "csv":
		return writeCSV(arch)
	case "json":
		return arch.WriteJSON(os.Stdout)
	default:
		return fmt.Errorf("unknown format %q (want summary, csv or json)", format)
	}
}

func printSummary(arch *calib.Archive) error {
	link := calib.Summarize(arch.ArchiveLinkRates())
	one := calib.Summarize(arch.ArchiveOneQubitRates())
	t1 := calib.Summarize(arch.ArchiveT1s())
	t2 := calib.Summarize(arch.ArchiveT2s())
	mean := arch.MustMean()
	strongest, sErr := mean.StrongestLink()
	weakest, wErr := mean.WeakestLink()

	fmt.Printf("device    %s: %d qubits, %d links, %d snapshots over %d days\n",
		arch.Topo.Name, arch.Topo.NumQubits, arch.Topo.NumLinks(), len(arch.Snapshots), arch.Days())
	fmt.Printf("2Q error  mean %.4f  std %.4f  range [%.4f, %.4f]\n", link.Mean, link.Std, link.Min, link.Max)
	fmt.Printf("1Q error  mean %.5f  std %.5f  max %.5f\n", one.Mean, one.Std, one.Max)
	fmt.Printf("T1        mean %.2fµs std %.2fµs\n", t1.Mean, t1.Std)
	fmt.Printf("T2        mean %.2fµs std %.2fµs\n", t2.Mean, t2.Std)
	fmt.Printf("strongest mean link Q%d-Q%d at %.4f\n", strongest.A, strongest.B, sErr)
	fmt.Printf("weakest   mean link Q%d-Q%d at %.4f (spread %.1fx)\n", weakest.A, weakest.B, wErr, wErr/sErr)
	return nil
}

func writeCSV(arch *calib.Archive) error {
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if err := w.Write([]string{"cycle", "day", "kind", "a", "b", "value"}); err != nil {
		return err
	}
	for _, s := range arch.Snapshots {
		cy, day := strconv.Itoa(s.Cycle), strconv.Itoa(s.Day)
		for _, c := range arch.Topo.Couplings {
			if err := w.Write([]string{cy, day, "cx_error", strconv.Itoa(c.A), strconv.Itoa(c.B),
				fmt.Sprintf("%.6f", s.TwoQubit[c])}); err != nil {
				return err
			}
		}
		for q := 0; q < arch.Topo.NumQubits; q++ {
			rows := [][3]string{
				{"u_error", strconv.Itoa(q), fmt.Sprintf("%.6f", s.OneQubit[q])},
				{"readout_error", strconv.Itoa(q), fmt.Sprintf("%.6f", s.Readout[q])},
				{"t1_us", strconv.Itoa(q), fmt.Sprintf("%.3f", s.T1Us[q])},
				{"t2_us", strconv.Itoa(q), fmt.Sprintf("%.3f", s.T2Us[q])},
			}
			for _, r := range rows {
				if err := w.Write([]string{cy, day, r[0], r[1], "", r[2]}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
