package main

import "testing"

func TestRunModes(t *testing.T) {
	for _, tc := range []struct {
		device, format string
		days           int
	}{
		{"q20", "summary", 0},
		{"q20", "csv", 2},
		{"q20", "json", 1},
		{"q5", "summary", 0},
	} {
		if err := run(tc.device, 1, tc.days, tc.format); err != nil {
			t.Errorf("run(%s,%s): %v", tc.device, tc.format, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 1, 0, "summary"); err == nil {
		t.Error("bogus device accepted")
	}
	if err := run("q20", 1, 0, "bogus"); err == nil {
		t.Error("bogus format accepted")
	}
}
