module vaq

go 1.22
